//! Chaos soak for the serving layer: seeded storms that combine every
//! recoverable fault class at once, under concurrent YCSB-shaped load,
//! against a per-writer model.
//!
//! Each seed runs phases of mixed faults — slow-I/O burst storms (both
//! the seeded latency profile and the armed `lsm.disk.slow_io` point),
//! transient read faults, corrupt read returns (bit rot on the wire; the
//! stored block is intact so read-repair heals), temporary ENOSPC
//! windows, and injected worker panics — while writer threads drive
//! put/delete/get/scan traffic and a snapshot reader hammers the lock-free
//! read path.
//!
//! The oracle is acknowledgement-based, so it is sound under any thread
//! interleaving and any fault timing:
//!
//! * An **acknowledged** write (`Ok`) pins its key to exactly that value
//!   until the next operation on the key. Zero acked-write loss, ever —
//!   including across a torn crash + reopen, because acks follow the
//!   group-commit sync.
//! * A **failed** write leaves the key with a *set* of acceptable values
//!   (the op may or may not have landed before the error — e.g. an ack
//!   lost to a worker panic after the WAL append).
//! * Every error must be **typed and expected**: overload rejections,
//!   deadline misses, transient I/O, ENOSPC, injected faults, or a
//!   serve-layer supervision transition. Anything else fails the seed.
//! * A watchdog fails the seed if the op stream stops making progress
//!   (deadlock / livelock detector) — the stall bands and deadline paths
//!   must reject, never block unboundedly.
//!
//! Seeds come from `MEMTREE_FAULT_SEEDS` (`"lo..hi"`, default `0..32`)
//! so CI can shard the range across jobs.

use memtree_common::error::MemtreeError;
use memtree_common::hash::splitmix64;
use memtree_lsm::{DbOptions, SlowIo};
use memtree_serve::{ServeOptions, ShardedDb};
use memtree_workload::ycsb::{Dist, Mix, Op, OpGenerator};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WRITERS: usize = 2;
const OPS_PER_WRITER: usize = 300;
const KEYS_PER_WRITER: usize = 48;
const PHASES: usize = 6;

fn seed_range() -> std::ops::Range<u64> {
    let spec = std::env::var("MEMTREE_FAULT_SEEDS").unwrap_or_else(|_| "0..32".to_string());
    let (lo, hi) = spec
        .split_once("..")
        .unwrap_or_else(|| panic!("MEMTREE_FAULT_SEEDS must look like '0..32', got {spec:?}"));
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("bad bound {s:?} in MEMTREE_FAULT_SEEDS: {e}"))
    };
    parse(lo)..parse(hi)
}

fn soak_opts(seed: u64) -> ServeOptions {
    ServeOptions {
        shards: 2 + (seed % 3) as usize,
        db: DbOptions {
            memtable_bytes: 2 << 10, // constant flush pressure
            cache_blocks: 8,         // most reads touch the (faulty) disk
            ..DbOptions::default()
        },
        queue_depth: 64,
        // Generous virtual budget: slow-I/O storms advance the clock by
        // hundreds of µs per op, so tight budgets would turn every op
        // into a deadline miss instead of exercising the full path. A
        // fraction still expires under the worst bursts — also valid.
        deadline_us: 2_000_000,
        retry_attempts: 24,
        // Restarts are the point of the storm; never poison.
        max_restarts: u64::MAX,
        ..ServeOptions::default()
    }
}

fn key(writer: usize, ki: usize) -> Vec<u8> {
    format!("w{writer}-key-{ki:04}").into_bytes()
}

/// Acceptable states for one key: `Ok` acks collapse the set to the new
/// value; failed ops add the attempted outcome without removing what was
/// there (the op may or may not have landed).
type Acceptable = BTreeMap<usize, Vec<Option<Vec<u8>>>>;

fn record_ok(model: &mut Acceptable, ki: usize, v: Option<Vec<u8>>) {
    model.insert(ki, vec![v]);
}

fn record_uncertain(model: &mut Acceptable, ki: usize, v: Option<Vec<u8>>) {
    let entry = model.entry(ki).or_insert_with(|| vec![None]);
    if !entry.contains(&v) {
        entry.push(v);
    }
}

/// Every error the storm is allowed to produce. Anything outside this
/// list (or an untyped panic reaching the writer) fails the seed.
fn assert_expected(seed: u64, e: &MemtreeError) {
    let ok = matches!(
        e,
        MemtreeError::Backpressure { .. }
            | MemtreeError::Stalled { .. }
            | MemtreeError::DeadlineExceeded { .. }
            | MemtreeError::TransientIo { .. }
            | MemtreeError::Enospc { .. }
            | MemtreeError::Injected { .. }
    ) || matches!(e, MemtreeError::Corruption { context, .. } if *context == "serve");
    assert!(ok, "seed {seed}: unexpected error class during storm: {e:?}");
}

/// One writer's YCSB-shaped stream over its own key range (disjoint
/// between writers, so each can keep an exact local model).
fn writer_loop(
    sdb: &ShardedDb,
    seed: u64,
    writer: usize,
    ops_done: &AtomicU64,
) -> Acceptable {
    let mut model: Acceptable = BTreeMap::new();
    let mut gen = OpGenerator::with_dist(
        Mix::A,
        KEYS_PER_WRITER,
        seed ^ (writer as u64).wrapping_mul(0x9e37_79b9),
        Dist::Uniform,
    );
    let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ writer as u64 | 1;
    let mut ver = 0u64;
    for _ in 0..OPS_PER_WRITER {
        let op = gen.next();
        let ki = match op {
            Op::Read(i) | Op::Update(i) | Op::Scan(i, _) => i % KEYS_PER_WRITER,
            Op::Insert(i) => i % KEYS_PER_WRITER,
        };
        let k = key(writer, ki);
        match op {
            Op::Update(_) | Op::Insert(_) => {
                // One in six mutations is a delete, so tombstones ride
                // through every fault class too.
                if splitmix64(&mut state) % 6 == 0 {
                    match sdb.delete(&k) {
                        Ok(_) => record_ok(&mut model, ki, None),
                        Err(e) => {
                            assert_expected(seed, &e);
                            record_uncertain(&mut model, ki, None);
                        }
                    }
                } else {
                    ver += 1;
                    let v = format!("w{writer}:{ki}:{ver}").into_bytes();
                    match sdb.put(&k, &v) {
                        Ok(_) => record_ok(&mut model, ki, Some(v)),
                        Err(e) => {
                            assert_expected(seed, &e);
                            record_uncertain(&mut model, ki, Some(v));
                        }
                    }
                }
            }
            Op::Read(_) => {
                // Worker-path read: the value (or error) must be typed;
                // content is checked at quiesce.
                if let Err(e) = sdb.get_fresh(&k) {
                    assert_expected(seed, &e);
                }
            }
            Op::Scan(_, len) => {
                let _ = sdb.scan(&k, None, len.min(16));
            }
        }
        ops_done.fetch_add(1, Ordering::Relaxed);
    }
    model
}

/// Reconfigures the fault cocktail for one phase of the storm. All
/// classes are recoverable by construction: stored bytes stay intact,
/// capacity windows end, storms pass, and killed workers restart.
fn arm_phase(disk: &memtree_lsm::SimDisk, seed: u64, phase: usize) {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ phase as u64;
    let roll = splitmix64(&mut s);
    // Slow I/O: alternate between a seeded storm profile and calm.
    if roll % 2 == 0 {
        disk.set_slow_io(Some(SlowIo::storm(seed ^ phase as u64)));
        memtree_faults::arm("lsm.disk.slow_io", 0.2, Some(200));
    } else {
        disk.set_slow_io(None);
        memtree_faults::disarm("lsm.disk.slow_io");
    }
    // Transient reads and wire-level bit rot, throttled by budgets.
    memtree_faults::arm("lsm.disk.read_transient", 0.10, Some(150));
    memtree_faults::arm("lsm.disk.read_corrupt", 0.05, Some(40));
    // A temporary ENOSPC window roughly every third phase.
    if roll % 3 == 0 {
        disk.set_capacity_bytes(Some(disk.used_bytes() + 6 * 1024));
    } else {
        disk.set_capacity_bytes(None);
    }
    // Worker kills in half the phases (budgeted, so the supervisor
    // restart path runs a handful of times per seed, not constantly).
    if roll % 2 == 1 {
        memtree_faults::arm("serve.worker.panic", 0.01, Some(2));
    } else {
        memtree_faults::disarm("serve.worker.panic");
    }
}

fn disarm_all(disk: &memtree_lsm::SimDisk) {
    disk.set_slow_io(None);
    disk.set_capacity_bytes(None);
    for p in [
        "lsm.disk.slow_io",
        "lsm.disk.read_transient",
        "lsm.disk.read_corrupt",
        "serve.worker.panic",
    ] {
        memtree_faults::disarm(p);
    }
}

/// Verifies one writer's model against the quiesced snapshot state.
fn check_model(sdb: &ShardedDb, seed: u64, writer: usize, model: &Acceptable, when: &str) {
    for (&ki, acceptable) in model {
        let got = sdb.get(&key(writer, ki));
        let got_ref = got.as_deref().map(|v| v.to_vec());
        assert!(
            acceptable.contains(&got_ref),
            "seed {seed} {when}: writer {writer} key {ki}: got {:?}, acceptable {:?}",
            got_ref.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
            acceptable
                .iter()
                .map(|o| o.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()))
                .collect::<Vec<_>>(),
        );
        // Zero acked-write loss: a singleton set means the last op on
        // this key was acknowledged, so equality is exact.
        if acceptable.len() == 1 {
            assert_eq!(
                got_ref, acceptable[0],
                "seed {seed} {when}: acked write lost on writer {writer} key {ki}"
            );
        }
    }
}

/// Quiesce after the storm: workers may still be mid-restart, so retry
/// the barrier for a bounded wall-clock window.
fn settle(sdb: &ShardedDb, seed: u64) {
    for _ in 0..500 {
        if sdb.barrier().is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("seed {seed}: serving layer never quiesced after the storm");
}

fn run_seed(seed: u64) {
    memtree_faults::enable(seed);
    let sdb = Arc::new(ShardedDb::new(soak_opts(seed)));
    let disk = sdb.disk_handle();

    let ops_done = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Watchdog: the op stream (plus the disk's virtual clock, which
    // moves whenever retries back off) must keep advancing. A minute of
    // wall time with zero progress means a deadlock — fail loudly
    // instead of hanging CI.
    let watchdog = {
        let ops_done = Arc::clone(&ops_done);
        let stop = Arc::clone(&stop);
        let disk = Arc::clone(&disk);
        std::thread::spawn(move || {
            let mut last = (0u64, 0u64);
            let mut stuck = 0u32;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                let now = (ops_done.load(Ordering::Relaxed), disk.now_us());
                if now == last {
                    stuck += 1;
                    assert!(
                        stuck < 600,
                        "seed {seed}: no progress for 60s at {now:?} — deadlock"
                    );
                } else {
                    stuck = 0;
                    last = now;
                }
            }
        })
    };

    // Snapshot reader: hammers the lock-free path through every fault
    // phase; it must never panic and never wedge.
    let reader = {
        let sdb = Arc::clone(&sdb);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut state = seed | 1;
            while !stop.load(Ordering::Relaxed) {
                let w = (splitmix64(&mut state) % WRITERS as u64) as usize;
                let ki = (splitmix64(&mut state) % KEYS_PER_WRITER as u64) as usize;
                let _ = sdb.get(&key(w, ki));
                if splitmix64(&mut state) % 16 == 0 {
                    let _ = sdb.scan(&key(w, 0), None, 8);
                }
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let sdb = Arc::clone(&sdb);
            let ops_done = Arc::clone(&ops_done);
            std::thread::spawn(move || writer_loop(&sdb, seed, w, &ops_done))
        })
        .collect();

    // Drive the storm phases off writer progress.
    let total = (WRITERS * OPS_PER_WRITER) as u64;
    let mut phase = 0usize;
    while phase < PHASES {
        let due = total * (phase as u64) / PHASES as u64;
        if ops_done.load(Ordering::Relaxed) >= due {
            arm_phase(&disk, seed, phase);
            phase += 1;
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let models: Vec<Acceptable> = writers
        .into_iter()
        .map(|w| w.join().expect("writer panicked"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    reader.join().expect("reader panicked");

    // Calm the disk, let restarts finish, and quiesce.
    disarm_all(&disk);
    settle(&sdb, seed);
    // Online scrub: every quarantine in this storm came from wire-level
    // rot (the stored bytes are intact), so scrub must lift them all and
    // report zero acknowledged data at risk.
    let reports = sdb
        .scrub_all()
        .unwrap_or_else(|e| panic!("seed {seed}: scrub failed: {e:?}"));
    for (shard, r) in reports.iter().enumerate() {
        assert!(
            r.lost_ranges.is_empty(),
            "seed {seed}: shard {shard} scrub reports acked data at risk: {:?}",
            r.lost_ranges
        );
    }
    for (w, model) in models.iter().enumerate() {
        check_model(&sdb, seed, w, model, "after storm");
    }
    let stats = sdb.stats();
    assert_eq!(stats.poisoned_shards, 0, "seed {seed}: {stats:?}");

    stop.store(true, Ordering::Relaxed);
    let sdb = Arc::try_unwrap(sdb).ok().expect("sole owner");
    if seed % 2 == 0 {
        // Graceful close + reopen: everything survives verbatim.
        let disk = sdb.close().unwrap_or_else(|e| panic!("seed {seed}: close failed: {e:?}"));
        let reopened = ShardedDb::open(disk, soak_opts(seed)).expect("reopen");
        for (w, model) in models.iter().enumerate() {
            check_model(&reopened, seed, w, model, "after close+reopen");
        }
        reopened.close().unwrap();
    } else {
        // Torn crash + recovery: acked writes survive by construction
        // (acks follow the group-commit sync); failed ops stay inside
        // their acceptable sets.
        let disk = sdb.crash(Some(seed));
        let reopened = ShardedDb::open(disk, soak_opts(seed)).expect("crash recovery");
        for (w, model) in models.iter().enumerate() {
            check_model(&reopened, seed, w, model, "after crash+recovery");
        }
        reopened.close().unwrap();
    }
    memtree_faults::disable();
    let _ = watchdog.join();
}

#[test]
fn chaos_soak_combined_fault_storms() {
    let _guard = memtree_faults::test_lock();
    let seeds = seed_range();
    assert!(!seeds.is_empty(), "empty MEMTREE_FAULT_SEEDS range");
    for seed in seeds {
        run_seed(seed);
    }
}
