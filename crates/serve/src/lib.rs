//! Concurrent sharded serving layer (`Shard<N>`) over the LSM engine.
//!
//! [`ShardedDb`] hash-partitions the key space across `N` independent
//! [`Db`] instances that share one [`SimDisk`]. Each shard is owned by a
//! dedicated **worker thread** fed over a bounded channel — the `Db`
//! itself stays single-writer (`Send` but not `Sync`, its hot-path
//! bookkeeping is `Cell`/`RefCell`), and all cross-thread coordination
//! happens at the edges:
//!
//! * **Reads never block behind writers.** Every worker republishes an
//!   immutable [`DbSnapshot`] into a [`SnapshotCell`] whenever its queue
//!   drains (and at the latest every [`ServeOptions::publish_every`]
//!   writes). [`ShardedDb::get`] and [`ShardedDb::scan`] run entirely on
//!   these snapshots from the caller's thread; the only shared mutable
//!   state they touch is the striped block cache.
//! * **Cross-shard group commit.** Workers append WAL frames without
//!   syncing; a single **committer thread** batches the append
//!   notifications from every shard, issues *one* `disk.sync()` for the
//!   whole batch, acknowledges every write in it, and tells each worker
//!   the sequence number its WAL is durable through
//!   ([`Db::mark_synced_through`]). One sync barrier is amortized over
//!   all shards — the multi-shard generalization of single-`Db` group
//!   commit.
//! * **Fault isolation.** A typed error on one shard (`Enospc`, a failed
//!   flush) fails *that request's* acknowledgement and nothing else: the
//!   worker keeps serving, sibling shards never see the error, and the
//!   committer keeps batching whatever still succeeds.
//!
//! # Overload survival
//!
//! The serving layer is built to *degrade with bounded, typed behavior*
//! instead of blocking or dying when the disk slows down or debt piles
//! up:
//!
//! * **Deadlines.** Every queued request carries a [`Deadline`] in
//!   virtual disk time. A request whose deadline expires while it is
//!   still queued is cancelled with a typed
//!   [`DeadlineExceeded`](MemtreeError::DeadlineExceeded); work that
//!   already reached the WAL (in-flight durable work) is never cancelled.
//! * **Admission control.** A request is shed *before* it enqueues when
//!   the shard's queue is full or when the estimated queue wait
//!   (`depth × est_service_us`) exceeds the request's remaining deadline
//!   budget. Shedding is typed
//!   ([`Backpressure`](MemtreeError::Backpressure)) and counted in
//!   [`ServeStats::shed`].
//! * **Backpressure retries.** The engine's write-stall bands reject
//!   writes with typed `Backpressure`/`Stalled` errors (never an
//!   unbounded block). The serving layer retries those with a jittered,
//!   deterministic backoff that advances the disk's virtual clock by the
//!   engine's `suggested_wait_us`, while the worker drains compaction
//!   debt one [`Db::compact_step`] at a time.
//! * **Supervision.** Worker panics are caught; a supervisor thread
//!   reopens the shard through the ordinary [`Db::open`] crash-recovery
//!   path (the shared disk state is intact — only unacknowledged,
//!   unappended requests are lost) and swaps in a fresh worker. A shard
//!   that keeps dying is **poisoned** after
//!   [`ServeOptions::max_restarts`] restarts: further requests fail fast
//!   with a typed corruption error instead of looping forever.
//! * **Graceful drain.** [`ShardedDb::close`] drains every queue, lets
//!   each worker flush and close its shard, and reports the first typed
//!   error it saw.
//!
//! Shards share the disk through per-shard file namespaces (`s0-wal`,
//! `s1-manifest-3`, …); block-level orphan GC is disabled per shard (one
//! shard must not free its siblings' blocks) and the cross-shard
//! [`gc_orphans`] runs once after every shard is open. The shard count is
//! persisted in a small meta file so a reopen re-partitions identically.

#![warn(missing_docs)]

use memtree_common::error::{MemtreeError, Result};
use memtree_common::hash::hash64;
use memtree_common::SnapshotCell;
use memtree_faults::Backoff;
use memtree_lsm::{
    gc_orphans, Db, DbOptions, DbSnapshot, DbStats, ScrubReport, SimDisk, StallConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// File on the shared disk recording the shard count (decimal ASCII), so
/// a reopen partitions keys exactly as the writer did.
const META_FILE: &str = "serve-meta";

/// Bounded attempts for control-plane sends (flush/barrier/stats) into a
/// momentarily full or restarting shard queue before declaring it wedged.
const CTL_SEND_ATTEMPTS: usize = 2_000;

/// Configuration for a [`ShardedDb`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Number of shards (worker threads). A reopen of an existing disk
    /// uses the persisted count and ignores this field.
    pub shards: usize,
    /// Per-shard engine options. `namespace`, `gc_orphans`,
    /// `wal_group_commit`, `compact_on_flush`, and `stall` are overridden
    /// by the serving layer (namespaced files, cross-shard GC,
    /// committer-owned syncing, worker-paced compaction, serving stall
    /// bands).
    pub db: DbOptions,
    /// Bounded depth of each shard's request queue.
    pub queue_depth: usize,
    /// A worker republishes its read snapshot at the latest after this
    /// many writes (sooner whenever its queue drains).
    pub publish_every: usize,
    /// The committer syncs after collecting at most this many pending
    /// write acknowledgements (it never waits for the batch to fill — a
    /// drained queue syncs immediately).
    pub commit_batch: usize,
    /// Default per-request deadline budget in virtual microseconds
    /// ([`SimDisk::now_us`]). `u64::MAX` disables deadlines. Per-call
    /// overrides: [`ShardedDb::put_with_deadline`] and friends.
    pub deadline_us: u64,
    /// Estimated per-request service time (virtual µs) used by admission
    /// control to translate queue depth into expected wait.
    pub est_service_us: u64,
    /// Total attempts (first try + retries) a request makes against
    /// typed overload rejections and worker restarts before the error is
    /// returned to the caller.
    pub retry_attempts: u32,
    /// A shard worker that panics is restarted at most this many times;
    /// after that the shard is poisoned and fails fast.
    pub max_restarts: u64,
    /// Write-stall bands for each shard. `None` derives
    /// [`StallConfig::serving`] from the engine options' L0 trigger and
    /// MemTable threshold.
    pub stall: Option<StallConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            shards: 4,
            db: DbOptions::default(),
            queue_depth: 256,
            publish_every: 256,
            commit_batch: 256,
            deadline_us: u64::MAX,
            est_service_us: 50,
            retry_attempts: 8,
            max_restarts: 3,
            stall: None,
        }
    }
}

/// A request deadline in virtual disk time ([`SimDisk::now_us`]).
///
/// Carried on every queued operation. Expiry cancels **queued** work only
/// — an operation the worker has already applied (its WAL frame exists)
/// is in-flight durable work and is never cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at_us: u64,
    budget_us: u64,
}

impl Deadline {
    /// No deadline: the request waits as long as it takes.
    pub fn none() -> Self {
        Self { at_us: u64::MAX, budget_us: u64::MAX }
    }

    /// A deadline `budget_us` virtual microseconds from the disk's
    /// current clock.
    pub fn within(disk: &SimDisk, budget_us: u64) -> Self {
        Self {
            at_us: disk.now_us().saturating_add(budget_us),
            budget_us,
        }
    }

    /// True once the disk clock has reached the deadline.
    pub fn expired(&self, disk: &SimDisk) -> bool {
        self.at_us != u64::MAX && disk.now_us() >= self.at_us
    }

    /// Virtual microseconds left before expiry (saturating).
    pub fn remaining_us(&self, disk: &SimDisk) -> u64 {
        self.at_us.saturating_sub(disk.now_us())
    }

    /// The total budget this deadline was created with.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    fn exceeded(&self) -> MemtreeError {
        MemtreeError::DeadlineExceeded { budget_us: self.budget_us }
    }
}

/// Overload and supervision counters for the whole serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests rejected by admission control (queue full, or estimated
    /// wait over the deadline budget) before they enqueued.
    pub shed: u64,
    /// Requests cancelled because their deadline expired while queued
    /// (or before admission).
    pub deadline_misses: u64,
    /// Retries driven by typed `Backpressure`/`Stalled` rejections.
    pub overload_retries: u64,
    /// Retries driven by a restarting worker (disconnected queue or a
    /// dropped acknowledgement).
    pub transient_retries: u64,
    /// Worker panics recovered by the supervisor.
    pub worker_restarts: u64,
    /// Shards poisoned after exhausting their restart budget.
    pub poisoned_shards: u64,
    /// Deepest any shard queue has been (admission-time sample).
    pub max_queue_depth: usize,
}

#[derive(Default)]
struct Counters {
    shed: AtomicU64,
    deadline_misses: AtomicU64,
    overload_retries: AtomicU64,
    transient_retries: AtomicU64,
}

/// A request to one shard worker. Acks are one-shot rendezvous channels.
enum Request {
    /// Insert/overwrite; acked with the write's WAL seq once durable.
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
        deadline: Deadline,
        ack: SyncSender<Result<u64>>,
    },
    /// Tombstone write; acked like `Put`.
    Delete {
        key: Vec<u8>,
        deadline: Deadline,
        ack: SyncSender<Result<u64>>,
    },
    /// Read-your-writes point read through the owning worker.
    Get {
        key: Vec<u8>,
        deadline: Deadline,
        ack: SyncSender<Result<Option<Vec<u8>>>>,
    },
    /// Force a MemTable flush on this shard.
    Flush { ack: SyncSender<Result<()>> },
    /// Publish a fresh snapshot, then ack (read-visibility barrier).
    Barrier { ack: SyncSender<u64> },
    /// Sample this shard's engine debt/overload counters.
    Stats { ack: SyncSender<DbStats> },
    /// Online scrub & repair, republishing the snapshot afterwards.
    Scrub { ack: SyncSender<Result<ScrubReport>> },
    /// Committer notification: the WAL is durable through `seq`.
    MarkSynced { seq: u64 },
    /// Drop the database without closing it (simulated power loss).
    Die,
}

/// Append notification from a worker to the committer.
struct Appended {
    shard: usize,
    seq: u64,
    ack: SyncSender<Result<u64>>,
}

/// What flows into the committer. `Stop` exists so shutdown never relies
/// on sender-count disconnection: workers hold committer-channel clones
/// and the committer reaches workers through the shared slots, so waiting
/// for either side's channel to disconnect first would deadlock the pair.
enum CommitMsg {
    Write(Appended),
    Stop,
}

/// Supervision events. Workers report their own panic (caught by the
/// spawn wrapper); `Stop` ends the supervisor, which then reaps every
/// worker and returns the first typed error it saw.
enum SupMsg {
    Down(usize),
    Stop,
}

/// Per-shard shared state. The request sender lives behind an `RwLock`
/// so the supervisor can swap in a fresh channel when it restarts the
/// worker; every send uses `try_send`, so no sender ever blocks while
/// holding the read lock.
struct Slot {
    tx: RwLock<SyncSender<Request>>,
    snap: SnapshotCell<DbSnapshot>,
    /// Client-tracked queue depth (incremented at admission, decremented
    /// by the worker at dequeue).
    depth: AtomicUsize,
    /// Deepest admission-time depth sample.
    max_depth: AtomicUsize,
    /// Supervisor restarts of this shard's worker.
    restarts: AtomicU64,
    /// Set when the restart budget is exhausted: fail fast, never queue.
    poisoned: AtomicBool,
}

impl Slot {
    fn sub_depth(&self) {
        // Saturating: a restart resets depth to zero while senders may
        // still be in flight, so a plain decrement could underflow.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(1)));
    }
}

/// A hash-partitioned, multi-threaded serving layer over `N` LSM shards.
///
/// Writes route to the owning shard's worker and block until the
/// cross-shard group commit makes them durable. Reads are served from
/// per-shard immutable snapshots without ever blocking behind writers.
/// See the module docs for the full architecture and the overload model.
pub struct ShardedDb {
    slots: Vec<Arc<Slot>>,
    committer_tx: Option<SyncSender<CommitMsg>>,
    committer: Option<JoinHandle<()>>,
    supervisor_tx: Option<SyncSender<SupMsg>>,
    supervisor: Option<JoinHandle<Result<()>>>,
    disk: Arc<SimDisk>,
    counters: Arc<Counters>,
    closing: Arc<AtomicBool>,
    opts: ServeOptions,
}

/// The engine options a shard runs with: namespaced files, cross-shard
/// GC, committer-owned syncing, worker-paced compaction, and the serving
/// stall bands.
fn shard_opts(base: &DbOptions, stall: StallConfig, shard: usize) -> DbOptions {
    DbOptions {
        namespace: format!("s{shard}-"),
        gc_orphans: false,
        // The committer owns syncing; appends must never sync.
        wal_group_commit: usize::MAX,
        // Compaction is paced by the worker (idle steps + overload
        // relief) so a flush never hides an unbounded merge.
        compact_on_flush: false,
        stall,
        ..base.clone()
    }
}

impl ShardedDb {
    /// Opens a sharded database on a fresh simulated disk.
    pub fn new(opts: ServeOptions) -> Self {
        let disk = Arc::new(SimDisk::new(opts.db.io_read_latency));
        Self::open(disk, opts).expect("fresh sharded open cannot fail")
    }

    /// Opens (or recovers) every shard from `disk`, runs the cross-shard
    /// orphan GC, and starts the worker, committer, and supervisor
    /// threads. On a disk that already holds a sharded database the
    /// persisted shard count wins over `opts.shards`.
    pub fn open(disk: Arc<SimDisk>, opts: ServeOptions) -> Result<Self> {
        let n = match Self::read_meta(&disk) {
            Some(n) => n,
            None => {
                let n = opts.shards.max(1);
                disk.write_file_atomic(META_FILE, n.to_string().as_bytes())?;
                disk.sync();
                n
            }
        };
        let stall = opts
            .stall
            .unwrap_or_else(|| StallConfig::serving(opts.db.l0_tables, opts.db.memtable_bytes));
        let mut dbs = Vec::with_capacity(n);
        for i in 0..n {
            dbs.push(Db::open(Arc::clone(&disk), shard_opts(&opts.db, stall, i))?);
        }
        gc_orphans(&disk, &dbs.iter().collect::<Vec<_>>())?;

        let counters = Arc::new(Counters::default());
        let closing = Arc::new(AtomicBool::new(false));
        let (commit_tx, commit_rx) = sync_channel::<CommitMsg>(n * opts.queue_depth + 1);
        let (sup_tx, sup_rx) = sync_channel::<SupMsg>(n + 2);
        let mut slots = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (i, db) in dbs.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<Request>(opts.queue_depth);
            let slot = Arc::new(Slot {
                tx: RwLock::new(tx),
                snap: SnapshotCell::new(db.snapshot()),
                depth: AtomicUsize::new(0),
                max_depth: AtomicUsize::new(0),
                restarts: AtomicU64::new(0),
                poisoned: AtomicBool::new(false),
            });
            workers.push(Some(spawn_worker(
                db,
                i,
                rx,
                commit_tx.clone(),
                Arc::clone(&slot),
                opts.publish_every.max(1),
                Arc::clone(&disk),
                Arc::clone(&counters),
                sup_tx.clone(),
            )));
            slots.push(slot);
        }
        let committer = {
            let disk = Arc::clone(&disk);
            let slots = slots.clone();
            let batch = opts.commit_batch.max(1);
            std::thread::Builder::new()
                .name("memtree-committer".into())
                .spawn(move || committer(commit_rx, disk, slots, batch))
                .expect("spawn committer")
        };
        let supervisor = {
            let ctx = SupervisorCtx {
                disk: Arc::clone(&disk),
                slots: slots.clone(),
                commit_tx: commit_tx.clone(),
                base: opts.db.clone(),
                stall,
                queue_depth: opts.queue_depth,
                publish_every: opts.publish_every.max(1),
                max_restarts: opts.max_restarts,
                closing: Arc::clone(&closing),
                counters: Arc::clone(&counters),
            };
            let sup_tx = sup_tx.clone();
            std::thread::Builder::new()
                .name("memtree-supervisor".into())
                .spawn(move || supervisor(sup_rx, sup_tx, ctx, workers))
                .expect("spawn supervisor")
        };
        Ok(Self {
            slots,
            committer_tx: Some(commit_tx),
            committer: Some(committer),
            supervisor_tx: Some(sup_tx),
            supervisor: Some(supervisor),
            disk,
            counters,
            closing,
            opts,
        })
    }

    fn read_meta(disk: &SimDisk) -> Option<usize> {
        let raw = disk.read_file(META_FILE);
        std::str::from_utf8(&raw).ok()?.trim().parse().ok().filter(|&n| n > 0)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The shared simulated disk.
    pub fn disk_handle(&self) -> Arc<SimDisk> {
        Arc::clone(&self.disk)
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (hash64(key) % self.slots.len() as u64) as usize
    }

    /// The default deadline for an operation: [`ServeOptions::deadline_us`]
    /// from now, or [`Deadline::none`] when deadlines are disabled.
    pub fn deadline(&self) -> Deadline {
        if self.opts.deadline_us == u64::MAX {
            Deadline::none()
        } else {
            Deadline::within(&self.disk, self.opts.deadline_us)
        }
    }

    /// Overload and supervision counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            shed: self.counters.shed.load(Ordering::Relaxed),
            deadline_misses: self.counters.deadline_misses.load(Ordering::Relaxed),
            overload_retries: self.counters.overload_retries.load(Ordering::Relaxed),
            transient_retries: self.counters.transient_retries.load(Ordering::Relaxed),
            worker_restarts: self
                .slots
                .iter()
                .map(|s| s.restarts.load(Ordering::Relaxed))
                .sum(),
            poisoned_shards: self
                .slots
                .iter()
                .filter(|s| s.poisoned.load(Ordering::Relaxed))
                .count() as u64,
            max_queue_depth: self
                .slots
                .iter()
                .map(|s| s.max_depth.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        }
    }

    /// Inserts or overwrites `key`, returning its WAL sequence number on
    /// the owning shard. Blocks until the cross-shard group commit has
    /// made the write durable. Typed overload rejections are retried
    /// with jittered backoff up to [`ServeOptions::retry_attempts`]
    /// times under the default [`ShardedDb::deadline`].
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64> {
        self.put_with_deadline(key, value, self.deadline())
    }

    /// [`ShardedDb::put`] under an explicit deadline.
    pub fn put_with_deadline(&self, key: &[u8], value: &[u8], deadline: Deadline) -> Result<u64> {
        self.request(self.shard_of(key), deadline, hash64(key), |ack| Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
            deadline,
            ack,
        })
    }

    /// Deletes `key` (durable tombstone), with `put`'s ack semantics.
    pub fn delete(&self, key: &[u8]) -> Result<u64> {
        self.delete_with_deadline(key, self.deadline())
    }

    /// [`ShardedDb::delete`] under an explicit deadline.
    pub fn delete_with_deadline(&self, key: &[u8], deadline: Deadline) -> Result<u64> {
        self.request(self.shard_of(key), deadline, hash64(key), |ack| Request::Delete {
            key: key.to_vec(),
            deadline,
            ack,
        })
    }

    /// Snapshot point read: never blocks behind writers; sees every write
    /// up to the owning shard's last published snapshot. Keeps serving
    /// (possibly stale) reads even while the shard's worker is down.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.slots[self.shard_of(key)].snap.load().get(key)
    }

    /// Read-your-writes point read routed through the owning worker: sees
    /// every write that worker has applied, published or not.
    pub fn get_fresh(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_fresh_with_deadline(key, self.deadline())
    }

    /// [`ShardedDb::get_fresh`] under an explicit deadline.
    pub fn get_fresh_with_deadline(
        &self,
        key: &[u8],
        deadline: Deadline,
    ) -> Result<Option<Vec<u8>>> {
        self.request(self.shard_of(key), deadline, hash64(key), |ack| Request::Get {
            key: key.to_vec(),
            deadline,
            ack,
        })
    }

    /// One queued round trip with admission control, deadline
    /// enforcement, and typed-overload retries.
    ///
    /// Retried errors: `Backpressure`/`Stalled` (after a jittered
    /// virtual-clock wait of roughly the engine's suggestion) and a
    /// restarting worker (disconnected queue or dropped ack — safe
    /// because put/delete/get are idempotent). Everything else returns
    /// immediately.
    fn request<T>(
        &self,
        shard: usize,
        deadline: Deadline,
        salt: u64,
        mut make: impl FnMut(SyncSender<Result<T>>) -> Request,
    ) -> Result<T> {
        let slot = &self.slots[shard];
        let mut last: Option<MemtreeError> = None;
        for attempt in 0..self.opts.retry_attempts.max(1) {
            if slot.poisoned.load(Ordering::Relaxed) {
                return Err(MemtreeError::corruption(
                    "serve",
                    format!("shard {shard} is poisoned (restart budget exhausted)"),
                ));
            }
            if deadline.expired(&self.disk) {
                self.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                return Err(deadline.exceeded());
            }
            if let Some(err) = &last {
                self.backoff(err, salt, attempt);
            }
            // Admission control: shed before enqueueing when the queue is
            // full or the expected wait cannot fit the deadline budget.
            let depth = slot.depth.load(Ordering::Relaxed);
            let est_wait = (depth as u64).saturating_mul(self.opts.est_service_us);
            if depth >= self.opts.queue_depth || est_wait > deadline.remaining_us(&self.disk) {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                last = Some(MemtreeError::Backpressure {
                    suggested_wait_us: est_wait.max(self.opts.est_service_us),
                });
                continue;
            }
            let (ack, rx) = sync_channel(1);
            let d = slot.depth.fetch_add(1, Ordering::Relaxed) + 1;
            slot.max_depth.fetch_max(d, Ordering::Relaxed);
            match slot.tx.read().expect("slot lock").try_send(make(ack)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    slot.sub_depth();
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    last = Some(MemtreeError::Backpressure {
                        suggested_wait_us: est_wait.max(self.opts.est_service_us),
                    });
                    continue;
                }
                Err(TrySendError::Disconnected(_)) => {
                    slot.sub_depth();
                    self.counters.transient_retries.fetch_add(1, Ordering::Relaxed);
                    last = Some(MemtreeError::TransientIo { context: "serve-worker-restarting" });
                    continue;
                }
            }
            match rx.recv() {
                Ok(Ok(v)) => return Ok(v),
                Ok(Err(e)) if e.is_overload() => {
                    self.counters.overload_retries.fetch_add(1, Ordering::Relaxed);
                    last = Some(e);
                }
                Ok(Err(e)) => return Err(e),
                // The worker restarted with our request in flight; the
                // op is idempotent, so re-submit.
                Err(_) => {
                    self.counters.transient_retries.fetch_add(1, Ordering::Relaxed);
                    last = Some(MemtreeError::TransientIo { context: "serve-ack-lost" });
                }
            }
        }
        Err(last.unwrap_or(MemtreeError::TransientIo { context: "serve-retries-exhausted" }))
    }

    /// Deterministic jittered backoff: advance the virtual clock by the
    /// engine's suggested wait (plus up to 50% keyed jitter so
    /// synchronized retries fan out), and yield a bounded slice of real
    /// time so a restarting worker can come back.
    fn backoff(&self, err: &MemtreeError, salt: u64, attempt: u32) {
        let base = match err {
            MemtreeError::Backpressure { suggested_wait_us } => (*suggested_wait_us).max(1),
            MemtreeError::Stalled { .. } => self.opts.est_service_us.max(1) * 4,
            _ => self.opts.est_service_us.max(1),
        };
        let jitter = hash64(&salt.wrapping_add(attempt as u64).to_le_bytes()) % (base / 2 + 1);
        self.disk.advance_clock(base + jitter);
        std::thread::sleep(Duration::from_micros(50u64 << attempt.min(6)));
    }

    /// Bounded control-plane send (flush/barrier/stats): retries a full
    /// or restarting queue for a while, then reports the shard wedged.
    fn send_ctl(&self, shard: usize, req: Request) -> Result<()> {
        let slot = &self.slots[shard];
        let mut req = req;
        for _ in 0..CTL_SEND_ATTEMPTS {
            if slot.poisoned.load(Ordering::Relaxed) {
                break;
            }
            slot.depth.fetch_add(1, Ordering::Relaxed);
            match slot.tx.read().expect("slot lock").try_send(req) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(r)) | Err(TrySendError::Disconnected(r)) => {
                    slot.sub_depth();
                    req = r;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        Err(MemtreeError::corruption(
            "serve",
            format!("shard {shard} queue is wedged or poisoned"),
        ))
    }

    /// Merged cross-shard range scan over the current snapshots: up to
    /// `limit` live entries with `lk <= key` (`< hk` when bounded), in
    /// global key order.
    pub fn scan(&self, lk: &[u8], hk: Option<&[u8]>, limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let per_shard: Vec<Vec<(Vec<u8>, Vec<u8>)>> = self
            .slots
            .iter()
            .map(|s| s.snap.load().scan_from(lk, hk, limit))
            .collect();
        // Shards partition the key space, so the streams are disjoint:
        // a plain k-way merge by key suffices.
        let mut idx = vec![0usize; per_shard.len()];
        let mut out = Vec::new();
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (s, stream) in per_shard.iter().enumerate() {
                if let Some((k, _)) = stream.get(idx[s]) {
                    if best.is_none_or(|b| k < &per_shard[b][idx[b]].0) {
                        best = Some(s);
                    }
                }
            }
            let Some(s) = best else { break };
            out.push(per_shard[s][idx[s]].clone());
            idx[s] += 1;
        }
        out
    }

    /// The current published snapshot of each shard (index = shard id).
    pub fn shard_snapshots(&self) -> Vec<Arc<DbSnapshot>> {
        self.slots.iter().map(|s| s.snap.load()).collect()
    }

    /// Online scrub & repair on every shard (index = shard id): verifies
    /// every live block, rewrites what a clean re-read or cache copy can
    /// save, and lifts quarantines that validate — then republishes the
    /// shard's snapshot so rescued data is immediately visible. Each
    /// report lists the repairs and every key range left at risk.
    pub fn scrub_all(&self) -> Result<Vec<ScrubReport>> {
        let mut rxs = Vec::with_capacity(self.slots.len());
        for shard in 0..self.slots.len() {
            let (ack, rx) = sync_channel(1);
            self.send_ctl(shard, Request::Scrub { ack })?;
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| MemtreeError::corruption("serve", "worker gone"))?
            })
            .collect()
    }

    /// Samples every shard's engine debt/overload counters
    /// (index = shard id).
    pub fn shard_db_stats(&self) -> Result<Vec<DbStats>> {
        let mut rxs = Vec::with_capacity(self.slots.len());
        for shard in 0..self.slots.len() {
            let (ack, rx) = sync_channel(1);
            self.send_ctl(shard, Request::Stats { ack })?;
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| MemtreeError::corruption("serve", "worker gone"))
            })
            .collect()
    }

    /// Read-visibility barrier: every write acknowledged before this call
    /// is visible to subsequent [`ShardedDb::get`]/[`ShardedDb::scan`].
    /// Returns each shard's snapshot epoch after the republish.
    pub fn barrier(&self) -> Result<Vec<u64>> {
        let mut rxs = Vec::with_capacity(self.slots.len());
        for shard in 0..self.slots.len() {
            let (ack, rx) = sync_channel(1);
            self.send_ctl(shard, Request::Barrier { ack })?;
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| MemtreeError::corruption("serve", "worker gone"))
            })
            .collect()
    }

    /// Forces a MemTable flush on every shard. The first shard error is
    /// returned, but every shard is asked to flush regardless.
    pub fn flush_all(&self) -> Result<()> {
        let mut rxs = Vec::with_capacity(self.slots.len());
        let mut first_err = None;
        for shard in 0..self.slots.len() {
            let (ack, rx) = sync_channel(1);
            match self.send_ctl(shard, Request::Flush { ack }) {
                Ok(()) => rxs.push(rx),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        for rx in rxs {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err
                        .or_else(|| Some(MemtreeError::corruption("serve", "worker gone")))
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Graceful shutdown: drains every queue, flushes and closes every
    /// shard, and returns the shared disk for reopening. The first typed
    /// error seen by any worker (or an unrecovered panic) is returned.
    pub fn close(mut self) -> Result<Arc<SimDisk>> {
        self.shutdown(false);
        let disk = Arc::clone(&self.disk);
        match self.supervisor.take() {
            Some(h) => match h.join() {
                Ok(Ok(())) => Ok(disk),
                Ok(Err(e)) => Err(e),
                Err(_) => Err(MemtreeError::corruption("serve", "supervisor panicked")),
            },
            None => Ok(disk),
        }
    }

    /// Simulated power loss: every worker abandons its database without
    /// closing (no final flush, no sync), then the disk drops all
    /// unsynced state. Returns the disk for crash-recovery reopening.
    pub fn crash(mut self, tear_seed: Option<u64>) -> Arc<SimDisk> {
        self.shutdown(true);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let disk = Arc::clone(&self.disk);
        disk.crash(tear_seed);
        disk
    }

    /// Stops the committer, tells every worker to exit (`die` skips the
    /// graceful close), and stops the supervisor — which reaps the
    /// workers.
    fn shutdown(&mut self, die: bool) {
        self.closing.store(true, Ordering::SeqCst);
        // Committer first, via an explicit `Stop`: it cannot exit on
        // channel disconnection because every live worker still holds a
        // committer-sender clone (and the committer reaches workers
        // through the shared slots — waiting out either disconnection
        // first would deadlock the pair). Writes a worker drains after
        // this point fall back to self-sync in `finish_write`, so their
        // acks still mean durable.
        if let Some(tx) = self.committer_tx.take() {
            let _ = tx.send(CommitMsg::Stop);
        }
        if let Some(c) = self.committer.take() {
            let _ = c.join();
        }
        if die {
            for slot in &self.slots {
                let _ = slot.tx.read().expect("slot lock").send(Request::Die);
            }
        }
        // Drop the real senders (the slots hold the only durable clones)
        // so each worker drains its queue and exits.
        for slot in &self.slots {
            let (closed_tx, _) = sync_channel(1);
            *slot.tx.write().expect("slot lock") = closed_tx;
        }
        if let Some(tx) = self.supervisor_tx.take() {
            let _ = tx.send(SupMsg::Stop);
        }
    }
}

impl Drop for ShardedDb {
    fn drop(&mut self) {
        // A plain drop (no close/crash) must still unwind the thread
        // trio; `shutdown` is idempotent through the `take()`s.
        if self.committer_tx.is_some() || self.supervisor_tx.is_some() {
            self.shutdown(false);
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Everything the supervisor needs to rebuild a shard.
struct SupervisorCtx {
    disk: Arc<SimDisk>,
    slots: Vec<Arc<Slot>>,
    commit_tx: SyncSender<CommitMsg>,
    base: DbOptions,
    stall: StallConfig,
    queue_depth: usize,
    publish_every: usize,
    max_restarts: u64,
    closing: Arc<AtomicBool>,
    counters: Arc<Counters>,
}

/// Spawns one shard worker with a panic trap: a panic reports
/// `SupMsg::Down` so the supervisor can rebuild the shard, and surfaces
/// as a typed corruption error if it is never recovered.
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    db: Db,
    shard: usize,
    rx: Receiver<Request>,
    commit_tx: SyncSender<CommitMsg>,
    slot: Arc<Slot>,
    publish_every: usize,
    disk: Arc<SimDisk>,
    counters: Arc<Counters>,
    sup_tx: SyncSender<SupMsg>,
) -> JoinHandle<Result<()>> {
    std::thread::Builder::new()
        .name(format!("memtree-shard-{shard}"))
        .spawn(move || {
            let trapped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shard_worker(db, shard, rx, commit_tx, slot, publish_every, disk, counters)
            }));
            match trapped {
                Ok(res) => res,
                Err(_) => {
                    let _ = sup_tx.send(SupMsg::Down(shard));
                    Err(MemtreeError::corruption(
                        "serve",
                        format!("shard {shard} worker panicked"),
                    ))
                }
            }
        })
        .expect("spawn shard worker")
}

/// The supervisor: restart panicked workers through `Db::open` recovery
/// until their restart budget runs out, then poison the shard. On
/// `Stop`, reap every worker and return the first typed error.
fn supervisor(
    rx: Receiver<SupMsg>,
    sup_tx: SyncSender<SupMsg>,
    ctx: SupervisorCtx,
    mut workers: Vec<Option<JoinHandle<Result<()>>>>,
) -> Result<()> {
    let mut first_err: Option<MemtreeError> = None;
    let poison = |slot: &Slot| {
        slot.poisoned.store(true, Ordering::SeqCst);
        // Swap in a closed sender so queued and future requests fail
        // fast instead of waiting on a worker that will never come.
        let (closed_tx, _) = sync_channel(1);
        *slot.tx.write().expect("slot lock") = closed_tx;
    };
    while let Ok(msg) = rx.recv() {
        let i = match msg {
            SupMsg::Stop => break,
            SupMsg::Down(i) => i,
        };
        // Reap the panicked worker; its typed "panicked" marker only
        // matters if the shard is never recovered.
        if let Some(h) = workers[i].take() {
            let _ = h.join();
        }
        if ctx.closing.load(Ordering::SeqCst) {
            continue;
        }
        let restarts = ctx.slots[i].restarts.fetch_add(1, Ordering::SeqCst) + 1;
        if restarts > ctx.max_restarts {
            poison(&ctx.slots[i]);
            first_err = first_err.or_else(|| {
                Some(MemtreeError::corruption(
                    "serve",
                    format!("shard {i} poisoned after {} restarts", restarts - 1),
                ))
            });
            continue;
        }
        // The panicked worker's Db unwound with it, but the shared disk
        // is intact: ordinary crash recovery rebuilds the shard with
        // every WAL-appended write. Transient disk faults during the
        // reopen retry on a bounded backoff.
        let opts = shard_opts(&ctx.base, ctx.stall, i);
        let mut backoff = Backoff::new(8);
        let reopened = loop {
            match Db::open(Arc::clone(&ctx.disk), opts.clone()) {
                Ok(db) => break Ok(db),
                Err(e) => {
                    if !backoff.retry(&e) {
                        break Err(e);
                    }
                }
            }
        };
        match reopened {
            Ok(db) => {
                // Restore read availability first (the recovered state is
                // a superset of the last published snapshot), then swap
                // in the fresh queue and worker.
                ctx.slots[i].snap.swap(Arc::new(db.snapshot()));
                let (tx, wrx) = sync_channel(ctx.queue_depth);
                *ctx.slots[i].tx.write().expect("slot lock") = tx;
                ctx.slots[i].depth.store(0, Ordering::SeqCst);
                workers[i] = Some(spawn_worker(
                    db,
                    i,
                    wrx,
                    ctx.commit_tx.clone(),
                    Arc::clone(&ctx.slots[i]),
                    ctx.publish_every,
                    Arc::clone(&ctx.disk),
                    Arc::clone(&ctx.counters),
                    sup_tx.clone(),
                ));
            }
            Err(e) => {
                poison(&ctx.slots[i]);
                first_err = first_err.or(Some(e));
            }
        }
    }
    for h in &mut workers {
        if let Some(h) = h.take() {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err
                        .or_else(|| Some(MemtreeError::corruption("serve", "worker panicked")))
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// One shard's event loop: apply writes, forward durability acks to the
/// committer, republish snapshots when idle or due, drain compaction
/// debt during idle moments and after overload rejections, and never let
/// one request's typed error take the worker down.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    mut db: Db,
    shard: usize,
    rx: Receiver<Request>,
    commit_tx: SyncSender<CommitMsg>,
    slot: Arc<Slot>,
    publish_every: usize,
    disk: Arc<SimDisk>,
    counters: Arc<Counters>,
) -> Result<()> {
    let mut dirty = 0usize;
    let mut die = false;
    loop {
        // Drain eagerly; republish the snapshot on a momentarily-empty
        // queue so readers see a fresh view whenever the shard is idle,
        // and use the lull to retire one level of compaction debt.
        let msg = match rx.try_recv() {
            Ok(m) => m,
            Err(TryRecvError::Empty) => {
                if dirty > 0 {
                    slot.snap.swap(Arc::new(db.snapshot()));
                    dirty = 0;
                }
                let _ = db.compact_debt();
                match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        if !matches!(msg, Request::MarkSynced { .. } | Request::Die) {
            // Client-sent requests were admission-counted.
            slot.sub_depth();
        }
        if memtree_faults::should_fail("serve.worker.panic") {
            panic!("injected: serve.worker.panic (shard {shard})");
        }
        match msg {
            Request::Put { key, value, deadline, ack } => {
                if deadline.expired(&disk) {
                    counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    let _ = ack.send(Err(deadline.exceeded()));
                } else {
                    let applied = db.put(&key, &value);
                    relieve_overload(&mut db, &applied);
                    finish_write(&mut db, shard, applied, ack, &commit_tx);
                    dirty += 1;
                }
            }
            Request::Delete { key, deadline, ack } => {
                if deadline.expired(&disk) {
                    counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    let _ = ack.send(Err(deadline.exceeded()));
                } else {
                    let applied = db.delete(&key);
                    relieve_overload(&mut db, &applied);
                    finish_write(&mut db, shard, applied, ack, &commit_tx);
                    dirty += 1;
                }
            }
            Request::Get { key, deadline, ack } => {
                let reply = if deadline.expired(&disk) {
                    counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    Err(deadline.exceeded())
                } else {
                    Ok(db.get(&key))
                };
                let _ = ack.send(reply);
            }
            Request::Flush { ack } => {
                let _ = ack.send(db.flush().map(|_| ()));
                dirty += 1;
            }
            Request::Barrier { ack } => {
                let epoch = slot.snap.swap(Arc::new(db.snapshot()));
                dirty = 0;
                let _ = ack.send(epoch);
            }
            Request::Stats { ack } => {
                let _ = ack.send(db.stats());
            }
            Request::Scrub { ack } => {
                let report = db.scrub();
                // Republish immediately: a lifted quarantine changes what
                // the snapshot serves, and callers scrub precisely to get
                // rescued data back into view.
                slot.snap.swap(Arc::new(db.snapshot()));
                dirty = 0;
                let _ = ack.send(report);
            }
            Request::MarkSynced { seq } => {
                db.mark_synced_through(seq);
            }
            Request::Die => {
                die = true;
                break;
            }
        }
        if dirty >= publish_every {
            slot.snap.swap(Arc::new(db.snapshot()));
            dirty = 0;
        }
    }
    if die {
        // Simulated power loss: drop the Db as-is — no flush, no sync.
        drop(db);
        return Ok(());
    }
    slot.snap.swap(Arc::new(db.snapshot()));
    db.close().map(|_| ())
}

/// After a typed overload rejection, spend the worker's turn draining
/// debt so the caller's backoff-retry finds a healthier shard: a stalled
/// engine gets a flush attempt plus a compaction step, a slowed-down one
/// gets a compaction step. Relief errors are deliberately dropped — the
/// rejection itself is what the caller sees, and flush/compaction
/// surface their own typed errors on the next direct call.
fn relieve_overload(db: &mut Db, applied: &Result<u64>) {
    match applied {
        Err(MemtreeError::Stalled { .. }) => {
            let _ = db.flush();
            let _ = db.compact_debt();
        }
        Err(MemtreeError::Backpressure { .. }) => {
            let _ = db.compact_debt();
        }
        _ => {}
    }
}

/// A write's worker-side second half: hand the durability ack to the
/// committer. A typed error acks the originating request and nothing
/// else; if the committer is already gone (shutdown), the worker syncs
/// its own appends so the last acks still mean durable.
fn finish_write(
    db: &mut Db,
    shard: usize,
    applied: Result<u64>,
    ack: SyncSender<Result<u64>>,
    commit_tx: &SyncSender<CommitMsg>,
) {
    match applied {
        Ok(seq) => {
            if commit_tx
                .send(CommitMsg::Write(Appended { shard, seq, ack: ack.clone() }))
                .is_err()
            {
                let synced = db.sync().map(|()| {
                    db.mark_synced_through(seq);
                    seq
                });
                let _ = ack.send(synced);
            }
        }
        Err(e) => {
            let _ = ack.send(Err(e));
        }
    }
}

/// The cross-shard group committer: collect a batch of append
/// notifications from any mix of shards, make them all durable with one
/// `disk.sync()`, acknowledge every caller, and tell each shard its new
/// durable high-water mark.
fn committer(
    rx: Receiver<CommitMsg>,
    disk: Arc<SimDisk>,
    slots: Vec<Arc<Slot>>,
    max_batch: usize,
) {
    while let Ok(first) = rx.recv() {
        let mut stop = false;
        let mut batch = match first {
            CommitMsg::Write(a) => vec![a],
            CommitMsg::Stop => break,
        };
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(CommitMsg::Write(a)) => batch.push(a),
                Ok(CommitMsg::Stop) => {
                    stop = true;
                    break;
                }
                Err(_) => break,
            }
        }
        // One sync covers every WAL frame appended (on any shard) before
        // the notifications we just collected.
        disk.sync();
        let mut high = vec![0u64; slots.len()];
        for m in &batch {
            high[m.shard] = high[m.shard].max(m.seq);
        }
        // Bookkeeping first, acks second: `try_send` because a full
        // worker queue must not deadlock the committer (the mark is
        // monotone — a later batch re-delivers a higher one). A
        // restarted shard sees an old mark at worst, which recovery
        // already tolerates.
        for (i, &seq) in high.iter().enumerate() {
            if seq > 0 {
                let _ = slots[i]
                    .tx
                    .read()
                    .expect("slot lock")
                    .try_send(Request::MarkSynced { seq });
            }
        }
        for m in batch {
            let _ = m.ack.send(Ok(m.seq));
        }
        if stop {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_db_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ShardedDb>();
    }

    #[test]
    fn writes_route_and_reads_see_them_after_barrier() {
        // Workers consume process-global fault firings; serialize with
        // fault-arming tests so an armed window never leaks here (and
        // never steals a counted firing from the arming test).
        let _g = memtree_faults::test_lock();
        let sdb = ShardedDb::new(ServeOptions { shards: 3, ..ServeOptions::default() });
        for i in 0..500u32 {
            let k = format!("key-{i:05}");
            sdb.put(k.as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        sdb.barrier().unwrap();
        for i in 0..500u32 {
            let k = format!("key-{i:05}");
            assert_eq!(
                sdb.get(k.as_bytes()).as_deref(),
                Some(format!("val-{i}").as_bytes()),
                "{k}"
            );
        }
        // Fresh reads bypass snapshot lag entirely.
        sdb.put(b"late", b"v").unwrap();
        assert_eq!(sdb.get_fresh(b"late").unwrap().as_deref(), Some(&b"v"[..]));
        // Cross-shard scan comes back in global key order.
        let all = sdb.scan(b"key-", Some(b"key-~"), usize::MAX);
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
        let disk = sdb.close().unwrap();
        // Reopen recovers everything, with the persisted shard count.
        let reopened =
            ShardedDb::open(disk, ServeOptions { shards: 9, ..ServeOptions::default() })
                .unwrap();
        assert_eq!(reopened.shards(), 3, "persisted shard count must win");
        for i in (0..500u32).step_by(11) {
            let k = format!("key-{i:05}");
            assert_eq!(
                reopened.get(k.as_bytes()).as_deref(),
                Some(format!("val-{i}").as_bytes())
            );
        }
        reopened.close().unwrap();
    }

    #[test]
    fn deletes_are_visible_and_durable() {
        // Workers consume process-global fault firings; serialize with
        // fault-arming tests so an armed window never leaks here (and
        // never steals a counted firing from the arming test).
        let _g = memtree_faults::test_lock();
        let sdb = ShardedDb::new(ServeOptions { shards: 2, ..ServeOptions::default() });
        for i in 0..100u32 {
            sdb.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in (0..100u32).step_by(2) {
            sdb.delete(format!("k{i}").as_bytes()).unwrap();
        }
        sdb.barrier().unwrap();
        for i in 0..100u32 {
            let got = sdb.get(format!("k{i}").as_bytes());
            if i % 2 == 0 {
                assert_eq!(got, None, "k{i} should be deleted");
            } else {
                assert_eq!(got.as_deref(), Some(&b"v"[..]));
            }
        }
        let disk = sdb.close().unwrap();
        let reopened = ShardedDb::open(disk, ServeOptions::default()).unwrap();
        for i in 0..100u32 {
            let got = reopened.get(format!("k{i}").as_bytes());
            if i % 2 == 0 {
                assert_eq!(got, None, "k{i} deleted state must survive reopen");
            } else {
                assert_eq!(got.as_deref(), Some(&b"v"[..]));
            }
        }
        reopened.close().unwrap();
    }

    #[test]
    fn group_commit_batches_syncs_across_shards() {
        // Workers consume process-global fault firings; serialize with
        // fault-arming tests so an armed window never leaks here (and
        // never steals a counted firing from the arming test).
        let _g = memtree_faults::test_lock();
        let sdb = ShardedDb::new(ServeOptions { shards: 4, ..ServeOptions::default() });
        let sdb = Arc::new(sdb);
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let sdb = Arc::clone(&sdb);
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        sdb.put(format!("t{t}-k{i}").as_bytes(), b"v").unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let stats = sdb.disk_handle().stats();
        assert!(
            stats.syncs < 1000,
            "1000 concurrent durable writes should group-commit well below \
             one sync each, saw {} syncs",
            stats.syncs
        );
        Arc::try_unwrap(sdb).ok().expect("sole owner").close().unwrap();
    }

    #[test]
    fn expired_deadline_is_typed_and_cancels_nothing_durable() {
        // Workers consume process-global fault firings; serialize with
        // fault-arming tests so an armed window never leaks here (and
        // never steals a counted firing from the arming test).
        let _g = memtree_faults::test_lock();
        let sdb = ShardedDb::new(ServeOptions { shards: 2, ..ServeOptions::default() });
        let disk = sdb.disk_handle();
        sdb.put(b"k1", b"v1").unwrap();
        // A deadline already in the past: typed rejection, no side effects.
        let dead = Deadline::within(&disk, 10);
        disk.advance_clock(1_000);
        let err = sdb.put_with_deadline(b"k2", b"v2", dead).unwrap_err();
        assert!(matches!(err, MemtreeError::DeadlineExceeded { budget_us: 10 }));
        let err = sdb.get_fresh_with_deadline(b"k1", dead).unwrap_err();
        assert!(matches!(err, MemtreeError::DeadlineExceeded { .. }));
        assert!(sdb.stats().deadline_misses >= 2);
        // The durable write before the miss is untouched.
        sdb.barrier().unwrap();
        assert_eq!(sdb.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(sdb.get(b"k2"), None, "expired put must not be applied");
        sdb.close().unwrap();
    }

    #[test]
    fn worker_panic_recovers_without_losing_acked_writes() {
        let _g = memtree_faults::test_lock();
        memtree_faults::enable(0xC0FFEE);
        let sdb = ShardedDb::new(ServeOptions {
            shards: 2,
            max_restarts: 64,
            ..ServeOptions::default()
        });
        let mut acked = Vec::new();
        for i in 0..200u32 {
            let k = format!("k{i:04}");
            if sdb.put(k.as_bytes(), b"v").is_ok() {
                acked.push(k);
            }
            if i == 50 || i == 120 {
                // Kill the next worker that dequeues anything.
                memtree_faults::arm("serve.worker.panic", 1.0, Some(1));
                // Poke both shards so the armed point actually fires.
                let _ = sdb.put(b"poke-a", b"x");
                let _ = sdb.put(b"poke-b", b"x");
            }
        }
        memtree_faults::disarm("serve.worker.panic");
        let stats = sdb.stats();
        assert!(stats.worker_restarts >= 1, "no restart happened: {stats:?}");
        assert_eq!(stats.poisoned_shards, 0);
        sdb.barrier().unwrap();
        for k in &acked {
            assert_eq!(
                sdb.get(k.as_bytes()).as_deref(),
                Some(&b"v"[..]),
                "acked write {k} lost after worker restart"
            );
        }
        memtree_faults::disable();
        sdb.close().unwrap();
    }

    #[test]
    fn poisoned_shard_fails_fast_and_siblings_keep_serving() {
        let _g = memtree_faults::test_lock();
        memtree_faults::enable(7);
        let sdb = ShardedDb::new(ServeOptions {
            shards: 2,
            max_restarts: 1,
            retry_attempts: 3,
            ..ServeOptions::default()
        });
        // Find one key per shard.
        let mut keys: Vec<Option<String>> = vec![None, None];
        for i in 0.. {
            let k = format!("probe{i}");
            let s = sdb.shard_of(k.as_bytes());
            if keys[s].is_none() {
                keys[s] = Some(k);
            }
            if keys.iter().all(Option::is_some) {
                break;
            }
        }
        let (k0, k1) = (keys[0].take().unwrap(), keys[1].take().unwrap());
        let victim = sdb.shard_of(k0.as_bytes());
        // Exhaust the restart budget: every dequeue panics.
        memtree_faults::arm("serve.worker.panic", 1.0, None);
        for _ in 0..8 {
            let _ = sdb.put(k0.as_bytes(), b"x");
            if sdb.stats().poisoned_shards > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        memtree_faults::disarm("serve.worker.panic");
        // Wait for the supervisor to finish poisoning.
        for _ in 0..200 {
            if sdb.stats().poisoned_shards > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = sdb.stats();
        assert_eq!(stats.poisoned_shards, 1, "victim shard must poison: {stats:?}");
        let err = sdb.put(k0.as_bytes(), b"x").unwrap_err();
        assert!(
            matches!(err, MemtreeError::Corruption { .. }),
            "poisoned shard must fail fast with a typed error, got {err:?}"
        );
        // The sibling shard is unaffected.
        assert!(sdb.shard_of(k1.as_bytes()) != victim);
        sdb.put(k1.as_bytes(), b"v").unwrap();
        assert_eq!(sdb.get_fresh(k1.as_bytes()).unwrap().as_deref(), Some(&b"v"[..]));
        memtree_faults::disable();
        // Close reports the poisoning as a typed error.
        assert!(sdb.close().is_err());
    }

    #[test]
    fn backpressure_is_retried_transparently_under_debt() {
        // Serialize with fault-arming tests: an armed serve.worker.panic
        // window in a sibling test would hit this test's worker too (the
        // registry is process-global).
        let _g = memtree_faults::test_lock();
        // Tiny memtable + a stop band *below* the flush threshold: nothing
        // drains a memtable but the write path, so every band crossing
        // must reject typed, and success proves the retry loop and
        // worker-side relief (flush + debt drain) actually converge —
        // deterministically, independent of worker/client scheduling.
        let sdb = ShardedDb::new(ServeOptions {
            shards: 1,
            db: DbOptions { memtable_bytes: 2 << 10, ..DbOptions::default() },
            stall: Some(StallConfig {
                slowdown_l0_runs: 1,
                stop_l0_runs: 4,
                slowdown_memtable_bytes: 1 << 10,
                stop_memtable_bytes: 1 << 10,
            }),
            retry_attempts: 64,
            ..ServeOptions::default()
        });
        for i in 0..400u32 {
            let k = format!("key-{i:05}");
            sdb.put(k.as_bytes(), &[0x5A; 64]).unwrap();
        }
        let stats = sdb.stats();
        assert!(
            stats.overload_retries > 0,
            "tight bands should have rejected at least once: {stats:?}"
        );
        let db_stats = sdb.shard_db_stats().unwrap();
        assert!(db_stats[0].backpressure_rejections > 0 || db_stats[0].stall_rejections > 0);
        assert!(db_stats[0].compact_steps > 0, "relief never compacted: {db_stats:?}");
        sdb.barrier().unwrap();
        for i in (0..400u32).step_by(37) {
            let k = format!("key-{i:05}");
            assert_eq!(sdb.get(k.as_bytes()).as_deref(), Some(&[0x5A; 64][..]), "{k}");
        }
        sdb.close().unwrap();
    }
}
