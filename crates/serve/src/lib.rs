//! Concurrent sharded serving layer (`Shard<N>`) over the LSM engine.
//!
//! [`ShardedDb`] hash-partitions the key space across `N` independent
//! [`Db`] instances that share one [`SimDisk`]. Each shard is owned by a
//! dedicated **worker thread** fed over a bounded channel — the `Db`
//! itself stays single-writer (`Send` but not `Sync`, its hot-path
//! bookkeeping is `Cell`/`RefCell`), and all cross-thread coordination
//! happens at the edges:
//!
//! * **Reads never block behind writers.** Every worker republishes an
//!   immutable [`DbSnapshot`] into a [`SnapshotCell`] whenever its queue
//!   drains (and at the latest every [`ServeOptions::publish_every`]
//!   writes). [`ShardedDb::get`] and [`ShardedDb::scan`] run entirely on
//!   these snapshots from the caller's thread; the only shared mutable
//!   state they touch is the striped block cache.
//! * **Cross-shard group commit.** Workers append WAL frames without
//!   syncing; a single **committer thread** batches the append
//!   notifications from every shard, issues *one* `disk.sync()` for the
//!   whole batch, acknowledges every write in it, and tells each worker
//!   the sequence number its WAL is durable through
//!   ([`Db::mark_synced_through`]). One sync barrier is amortized over
//!   all shards — the multi-shard generalization of single-`Db` group
//!   commit.
//! * **Fault isolation.** A typed error on one shard (`Enospc`, a failed
//!   flush) fails *that request's* acknowledgement and nothing else: the
//!   worker keeps serving, sibling shards never see the error, and the
//!   committer keeps batching whatever still succeeds.
//!
//! Shards share the disk through per-shard file namespaces (`s0-wal`,
//! `s1-manifest-3`, …); block-level orphan GC is disabled per shard (one
//! shard must not free its siblings' blocks) and the cross-shard
//! [`gc_orphans`] runs once after every shard is open. The shard count is
//! persisted in a small meta file so a reopen re-partitions identically.

#![warn(missing_docs)]

use memtree_common::error::{MemtreeError, Result};
use memtree_common::hash::hash64;
use memtree_common::SnapshotCell;
use memtree_lsm::{gc_orphans, Db, DbOptions, DbSnapshot, SimDisk};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// File on the shared disk recording the shard count (decimal ASCII), so
/// a reopen partitions keys exactly as the writer did.
const META_FILE: &str = "serve-meta";

/// Configuration for a [`ShardedDb`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Number of shards (worker threads). A reopen of an existing disk
    /// uses the persisted count and ignores this field.
    pub shards: usize,
    /// Per-shard engine options. `namespace`, `gc_orphans`, and
    /// `wal_group_commit` are overridden by the serving layer (namespaced
    /// files, cross-shard GC, committer-owned syncing).
    pub db: DbOptions,
    /// Bounded depth of each shard's request queue.
    pub queue_depth: usize,
    /// A worker republishes its read snapshot at the latest after this
    /// many writes (sooner whenever its queue drains).
    pub publish_every: usize,
    /// The committer syncs after collecting at most this many pending
    /// write acknowledgements (it never waits for the batch to fill — a
    /// drained queue syncs immediately).
    pub commit_batch: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            shards: 4,
            db: DbOptions::default(),
            queue_depth: 256,
            publish_every: 256,
            commit_batch: 256,
        }
    }
}

/// A request to one shard worker. Acks are one-shot rendezvous channels.
enum Request {
    /// Insert/overwrite; acked with the write's WAL seq once durable.
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
        ack: SyncSender<Result<u64>>,
    },
    /// Tombstone write; acked like `Put`.
    Delete {
        key: Vec<u8>,
        ack: SyncSender<Result<u64>>,
    },
    /// Read-your-writes point read through the owning worker.
    Get {
        key: Vec<u8>,
        ack: SyncSender<Option<Vec<u8>>>,
    },
    /// Force a MemTable flush on this shard.
    Flush { ack: SyncSender<Result<()>> },
    /// Publish a fresh snapshot, then ack (read-visibility barrier).
    Barrier { ack: SyncSender<u64> },
    /// Committer notification: the WAL is durable through `seq`.
    MarkSynced { seq: u64 },
    /// Drop the database without closing it (simulated power loss).
    Die,
}

/// Append notification from a worker to the committer.
struct Appended {
    shard: usize,
    seq: u64,
    ack: SyncSender<Result<u64>>,
}

/// What flows into the committer. `Stop` exists so shutdown never relies
/// on sender-count disconnection: workers hold committer-channel clones
/// and the committer holds worker-channel clones, so waiting for either
/// side's channel to disconnect first would deadlock the pair.
enum CommitMsg {
    Write(Appended),
    Stop,
}

struct ShardHandle {
    tx: SyncSender<Request>,
    snap: Arc<SnapshotCell<DbSnapshot>>,
    worker: Option<JoinHandle<Result<()>>>,
}

/// A hash-partitioned, multi-threaded serving layer over `N` LSM shards.
///
/// Writes route to the owning shard's worker and block until the
/// cross-shard group commit makes them durable. Reads are served from
/// per-shard immutable snapshots without ever blocking behind writers.
/// See the module docs for the full architecture.
pub struct ShardedDb {
    shards: Vec<ShardHandle>,
    committer_tx: Option<SyncSender<CommitMsg>>,
    committer: Option<JoinHandle<()>>,
    disk: Arc<SimDisk>,
}

impl ShardedDb {
    /// Opens a sharded database on a fresh simulated disk.
    pub fn new(opts: ServeOptions) -> Self {
        let disk = Arc::new(SimDisk::new(opts.db.io_read_latency));
        Self::open(disk, opts).expect("fresh sharded open cannot fail")
    }

    /// Opens (or recovers) every shard from `disk`, runs the cross-shard
    /// orphan GC, and starts the worker and committer threads. On a disk
    /// that already holds a sharded database the persisted shard count
    /// wins over `opts.shards`.
    pub fn open(disk: Arc<SimDisk>, opts: ServeOptions) -> Result<Self> {
        let n = match Self::read_meta(&disk) {
            Some(n) => n,
            None => {
                let n = opts.shards.max(1);
                disk.write_file_atomic(META_FILE, n.to_string().as_bytes())?;
                disk.sync();
                n
            }
        };
        let mut dbs = Vec::with_capacity(n);
        for i in 0..n {
            let shard_opts = DbOptions {
                namespace: format!("s{i}-"),
                gc_orphans: false,
                // The committer owns syncing; appends must never sync.
                wal_group_commit: usize::MAX,
                ..opts.db.clone()
            };
            dbs.push(Db::open(Arc::clone(&disk), shard_opts)?);
        }
        gc_orphans(&disk, &dbs.iter().collect::<Vec<_>>())?;

        let (commit_tx, commit_rx) = sync_channel::<CommitMsg>(n * opts.queue_depth + 1);
        let mut shards = Vec::with_capacity(n);
        let mut worker_txs = Vec::with_capacity(n);
        for (i, db) in dbs.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<Request>(opts.queue_depth);
            let snap = Arc::new(SnapshotCell::new(db.snapshot()));
            let worker = {
                let snap = Arc::clone(&snap);
                let commit_tx = commit_tx.clone();
                let publish_every = opts.publish_every.max(1);
                std::thread::Builder::new()
                    .name(format!("memtree-shard-{i}"))
                    .spawn(move || shard_worker(db, i, rx, commit_tx, snap, publish_every))
                    .expect("spawn shard worker")
            };
            worker_txs.push(tx.clone());
            shards.push(ShardHandle { tx, snap, worker: Some(worker) });
        }
        let committer = {
            let disk = Arc::clone(&disk);
            let batch = opts.commit_batch.max(1);
            std::thread::Builder::new()
                .name("memtree-committer".into())
                .spawn(move || committer(commit_rx, disk, worker_txs, batch))
                .expect("spawn committer")
        };
        Ok(Self {
            shards,
            committer_tx: Some(commit_tx),
            committer: Some(committer),
            disk,
        })
    }

    fn read_meta(disk: &SimDisk) -> Option<usize> {
        let raw = disk.read_file(META_FILE);
        std::str::from_utf8(&raw).ok()?.trim().parse().ok().filter(|&n| n > 0)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared simulated disk.
    pub fn disk_handle(&self) -> Arc<SimDisk> {
        Arc::clone(&self.disk)
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (hash64(key) % self.shards.len() as u64) as usize
    }

    /// Inserts or overwrites `key`, returning its WAL sequence number on
    /// the owning shard. Blocks until the cross-shard group commit has
    /// made the write durable.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64> {
        let (ack, rx) = sync_channel(1);
        let req = Request::Put { key: key.to_vec(), value: value.to_vec(), ack };
        self.send(self.shard_of(key), req, rx)?
    }

    /// Deletes `key` (durable tombstone), with `put`'s ack semantics.
    pub fn delete(&self, key: &[u8]) -> Result<u64> {
        let (ack, rx) = sync_channel(1);
        let req = Request::Delete { key: key.to_vec(), ack };
        self.send(self.shard_of(key), req, rx)?
    }

    /// Snapshot point read: never blocks behind writers; sees every write
    /// up to the owning shard's last published snapshot.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shards[self.shard_of(key)].snap.load().get(key)
    }

    /// Read-your-writes point read routed through the owning worker: sees
    /// every write that worker has applied, published or not.
    pub fn get_fresh(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let (ack, rx) = sync_channel(1);
        self.send(self.shard_of(key), Request::Get { key: key.to_vec(), ack }, rx)
    }

    /// Merged cross-shard range scan over the current snapshots: up to
    /// `limit` live entries with `lk <= key` (`< hk` when bounded), in
    /// global key order.
    pub fn scan(&self, lk: &[u8], hk: Option<&[u8]>, limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let per_shard: Vec<Vec<(Vec<u8>, Vec<u8>)>> = self
            .shards
            .iter()
            .map(|s| s.snap.load().scan_from(lk, hk, limit))
            .collect();
        // Shards partition the key space, so the streams are disjoint:
        // a plain k-way merge by key suffices.
        let mut idx = vec![0usize; per_shard.len()];
        let mut out = Vec::new();
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (s, stream) in per_shard.iter().enumerate() {
                if let Some((k, _)) = stream.get(idx[s]) {
                    if best.is_none_or(|b| k < &per_shard[b][idx[b]].0) {
                        best = Some(s);
                    }
                }
            }
            let Some(s) = best else { break };
            out.push(per_shard[s][idx[s]].clone());
            idx[s] += 1;
        }
        out
    }

    /// The current published snapshot of each shard (index = shard id).
    pub fn shard_snapshots(&self) -> Vec<Arc<DbSnapshot>> {
        self.shards.iter().map(|s| s.snap.load()).collect()
    }

    /// Read-visibility barrier: every write acknowledged before this call
    /// is visible to subsequent [`ShardedDb::get`]/[`ShardedDb::scan`].
    /// Returns each shard's snapshot epoch after the republish.
    pub fn barrier(&self) -> Result<Vec<u64>> {
        let mut rxs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (ack, rx) = sync_channel(1);
            shard
                .tx
                .send(Request::Barrier { ack })
                .map_err(|_| MemtreeError::corruption("serve", "worker gone"))?;
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| MemtreeError::corruption("serve", "worker gone"))
            })
            .collect()
    }

    /// Forces a MemTable flush on every shard. The first shard error is
    /// returned, but every shard is asked to flush regardless.
    pub fn flush_all(&self) -> Result<()> {
        let mut rxs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (ack, rx) = sync_channel(1);
            shard
                .tx
                .send(Request::Flush { ack })
                .map_err(|_| MemtreeError::corruption("serve", "worker gone"))?;
            rxs.push(rx);
        }
        let mut first_err = None;
        for rx in rxs {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err
                        .or_else(|| Some(MemtreeError::corruption("serve", "worker gone")))
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Graceful shutdown: flushes and closes every shard, returning the
    /// shared disk for reopening.
    pub fn close(mut self) -> Result<Arc<SimDisk>> {
        self.shutdown(false);
        let disk = Arc::clone(&self.disk);
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Some(w) = shard.worker.take() {
                match w.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => first_err = first_err.or(Some(e)),
                    Err(_) => {
                        first_err = first_err.or_else(|| {
                            Some(MemtreeError::corruption("serve", "worker panicked"))
                        })
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(disk),
        }
    }

    /// Simulated power loss: every worker abandons its database without
    /// closing (no final flush, no sync), then the disk drops all
    /// unsynced state. Returns the disk for crash-recovery reopening.
    pub fn crash(mut self, tear_seed: Option<u64>) -> Arc<SimDisk> {
        self.shutdown(true);
        for shard in &mut self.shards {
            if let Some(w) = shard.worker.take() {
                let _ = w.join();
            }
        }
        let disk = Arc::clone(&self.disk);
        disk.crash(tear_seed);
        disk
    }

    /// Stops the committer and tells every worker to exit (`die` skips
    /// the graceful close).
    fn shutdown(&mut self, die: bool) {
        // Committer first, via an explicit `Stop`: it cannot exit on
        // channel disconnection because every live worker still holds a
        // committer-sender clone (and the committer holds worker-sender
        // clones — waiting out either disconnection first would deadlock
        // the pair). After the committer returns, its worker-sender
        // clones are gone, so dropping ours below disconnects the
        // workers. Writes a worker drains after this point fall back to
        // self-sync in `finish_write`, so their acks still mean durable.
        if let Some(tx) = self.committer_tx.take() {
            let _ = tx.send(CommitMsg::Stop);
        }
        if let Some(c) = self.committer.take() {
            let _ = c.join();
        }
        if die {
            for shard in &self.shards {
                let _ = shard.tx.send(Request::Die);
            }
        }
        // Workers exit when every sender is gone; `close` relies on the
        // drop of `self.shards[..].tx` by the caller holding &mut self —
        // senders are dropped by replacing them with a closed channel.
        for shard in &mut self.shards {
            let (closed_tx, _) = sync_channel(1);
            shard.tx = closed_tx;
        }
    }

    fn send<T>(&self, shard: usize, req: Request, rx: Receiver<T>) -> Result<T> {
        let wedged =
            || MemtreeError::corruption("serve", format!("shard {shard} worker is gone"));
        self.shards[shard].tx.send(req).map_err(|_| wedged())?;
        rx.recv().map_err(|_| wedged())
    }
}

/// One shard's event loop: apply writes, forward durability acks to the
/// committer, republish snapshots when idle or due, and never let one
/// request's typed error take the worker down.
fn shard_worker(
    mut db: Db,
    shard: usize,
    rx: Receiver<Request>,
    commit_tx: SyncSender<CommitMsg>,
    snap: Arc<SnapshotCell<DbSnapshot>>,
    publish_every: usize,
) -> Result<()> {
    let mut dirty = 0usize;
    let mut die = false;
    loop {
        // Drain eagerly; republish the snapshot on a momentarily-empty
        // queue so readers see a fresh view whenever the shard is idle.
        let msg = match rx.try_recv() {
            Ok(m) => m,
            Err(TryRecvError::Empty) => {
                if dirty > 0 {
                    snap.swap(Arc::new(db.snapshot()));
                    dirty = 0;
                }
                match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        match msg {
            Request::Put { key, value, ack } => {
                let applied = db.put(&key, &value);
                finish_write(&mut db, shard, applied, ack, &commit_tx);
                dirty += 1;
            }
            Request::Delete { key, ack } => {
                let applied = db.delete(&key);
                finish_write(&mut db, shard, applied, ack, &commit_tx);
                dirty += 1;
            }
            Request::Get { key, ack } => {
                let _ = ack.send(db.get(&key));
            }
            Request::Flush { ack } => {
                let _ = ack.send(db.flush().map(|_| ()));
                dirty += 1;
            }
            Request::Barrier { ack } => {
                let epoch = snap.swap(Arc::new(db.snapshot()));
                dirty = 0;
                let _ = ack.send(epoch);
            }
            Request::MarkSynced { seq } => {
                db.mark_synced_through(seq);
            }
            Request::Die => {
                die = true;
                break;
            }
        }
        if dirty >= publish_every {
            snap.swap(Arc::new(db.snapshot()));
            dirty = 0;
        }
    }
    if die {
        // Simulated power loss: drop the Db as-is — no flush, no sync.
        drop(db);
        return Ok(());
    }
    snap.swap(Arc::new(db.snapshot()));
    db.close().map(|_| ())
}

/// A write's worker-side second half: hand the durability ack to the
/// committer. A typed error acks the originating request and nothing
/// else; if the committer is already gone (shutdown), the worker syncs
/// its own appends so the last acks still mean durable.
fn finish_write(
    db: &mut Db,
    shard: usize,
    applied: Result<u64>,
    ack: SyncSender<Result<u64>>,
    commit_tx: &SyncSender<CommitMsg>,
) {
    match applied {
        Ok(seq) => {
            if commit_tx
                .send(CommitMsg::Write(Appended { shard, seq, ack: ack.clone() }))
                .is_err()
            {
                let synced = db.sync().map(|()| {
                    db.mark_synced_through(seq);
                    seq
                });
                let _ = ack.send(synced);
            }
        }
        Err(e) => {
            let _ = ack.send(Err(e));
        }
    }
}

/// The cross-shard group committer: collect a batch of append
/// notifications from any mix of shards, make them all durable with one
/// `disk.sync()`, acknowledge every caller, and tell each shard its new
/// durable high-water mark.
fn committer(
    rx: Receiver<CommitMsg>,
    disk: Arc<SimDisk>,
    worker_txs: Vec<SyncSender<Request>>,
    max_batch: usize,
) {
    while let Ok(first) = rx.recv() {
        let mut stop = false;
        let mut batch = match first {
            CommitMsg::Write(a) => vec![a],
            CommitMsg::Stop => break,
        };
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(CommitMsg::Write(a)) => batch.push(a),
                Ok(CommitMsg::Stop) => {
                    stop = true;
                    break;
                }
                Err(_) => break,
            }
        }
        // One sync covers every WAL frame appended (on any shard) before
        // the notifications we just collected.
        disk.sync();
        let mut high = vec![0u64; worker_txs.len()];
        for m in &batch {
            high[m.shard] = high[m.shard].max(m.seq);
        }
        // Bookkeeping first, acks second: `try_send` because a full
        // worker queue must not deadlock the committer (the mark is
        // monotone — a later batch re-delivers a higher one).
        for (i, &seq) in high.iter().enumerate() {
            if seq > 0 {
                let _ = worker_txs[i].try_send(Request::MarkSynced { seq });
            }
        }
        for m in batch {
            let _ = m.ack.send(Ok(m.seq));
        }
        if stop {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_db_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ShardedDb>();
    }

    #[test]
    fn writes_route_and_reads_see_them_after_barrier() {
        let sdb = ShardedDb::new(ServeOptions { shards: 3, ..ServeOptions::default() });
        for i in 0..500u32 {
            let k = format!("key-{i:05}");
            sdb.put(k.as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        sdb.barrier().unwrap();
        for i in 0..500u32 {
            let k = format!("key-{i:05}");
            assert_eq!(
                sdb.get(k.as_bytes()).as_deref(),
                Some(format!("val-{i}").as_bytes()),
                "{k}"
            );
        }
        // Fresh reads bypass snapshot lag entirely.
        sdb.put(b"late", b"v").unwrap();
        assert_eq!(sdb.get_fresh(b"late").unwrap().as_deref(), Some(&b"v"[..]));
        // Cross-shard scan comes back in global key order.
        let all = sdb.scan(b"key-", Some(b"key-~"), usize::MAX);
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
        let disk = sdb.close().unwrap();
        // Reopen recovers everything, with the persisted shard count.
        let reopened =
            ShardedDb::open(disk, ServeOptions { shards: 9, ..ServeOptions::default() })
                .unwrap();
        assert_eq!(reopened.shards(), 3, "persisted shard count must win");
        for i in (0..500u32).step_by(11) {
            let k = format!("key-{i:05}");
            assert_eq!(
                reopened.get(k.as_bytes()).as_deref(),
                Some(format!("val-{i}").as_bytes())
            );
        }
        reopened.close().unwrap();
    }

    #[test]
    fn deletes_are_visible_and_durable() {
        let sdb = ShardedDb::new(ServeOptions { shards: 2, ..ServeOptions::default() });
        for i in 0..100u32 {
            sdb.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in (0..100u32).step_by(2) {
            sdb.delete(format!("k{i}").as_bytes()).unwrap();
        }
        sdb.barrier().unwrap();
        for i in 0..100u32 {
            let got = sdb.get(format!("k{i}").as_bytes());
            if i % 2 == 0 {
                assert_eq!(got, None, "k{i} should be deleted");
            } else {
                assert_eq!(got.as_deref(), Some(&b"v"[..]));
            }
        }
        let disk = sdb.close().unwrap();
        let reopened = ShardedDb::open(disk, ServeOptions::default()).unwrap();
        for i in 0..100u32 {
            let got = reopened.get(format!("k{i}").as_bytes());
            if i % 2 == 0 {
                assert_eq!(got, None, "k{i} deleted state must survive reopen");
            } else {
                assert_eq!(got.as_deref(), Some(&b"v"[..]));
            }
        }
        reopened.close().unwrap();
    }

    #[test]
    fn group_commit_batches_syncs_across_shards() {
        let sdb = ShardedDb::new(ServeOptions { shards: 4, ..ServeOptions::default() });
        let sdb = Arc::new(sdb);
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let sdb = Arc::clone(&sdb);
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        sdb.put(format!("t{t}-k{i}").as_bytes(), b"v").unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let stats = sdb.disk_handle().stats();
        assert!(
            stats.syncs < 1000,
            "1000 concurrent durable writes should group-commit well below \
             one sync each, saw {} syncs",
            stats.syncs
        );
        Arc::try_unwrap(sdb).ok().expect("sole owner").close().unwrap();
    }
}
