//! Point and range filter baselines used throughout Chapter 4.
//!
//! * [`BloomFilter`] — a RocksDB-style Bloom filter with 64-bit double
//!   hashing (the thesis swaps RocksDB's 32-bit Murmur for a 64-bit one at
//!   large key counts; ours is 64-bit from the start).
//! * [`Arf`] — the Adaptive Range Filter of Project Siberia, the
//!   state-of-the-art range-filter baseline SuRF is compared against
//!   (Table 4.1): a binary tree over the integer key space whose leaves
//!   record "may contain keys"/"definitely empty", trained by queries.
//!   We build the tree lazily under a space budget instead of
//!   materializing the paper's perfect trie (which needed 26 GB); the
//!   resulting filter behaviour (granularity, FPR, query path) matches.

#![warn(missing_docs)]

use memtree_common::error::{MemtreeError, Result};
use memtree_common::hash::hash64_seed;
use memtree_common::mem::vec_bytes;
use memtree_common::traits::{PointFilter, RangeFilter};
use memtree_succinct::BitVector;

/// A Bloom filter with `k` probes derived from two 64-bit hashes
/// (Kirsch–Mitzenmacher double hashing).
#[derive(Debug)]
pub struct BloomFilter {
    bits: BitVector,
    k: u32,
    num_keys: usize,
}

impl BloomFilter {
    /// Creates a filter sized at `bits_per_key` for `keys`, with the
    /// FPR-optimal probe count `k = round(ln 2 * bits_per_key)`.
    pub fn new(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let m = ((keys.len() as f64 * bits_per_key).ceil() as usize).max(64);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        let mut bits = BitVector::zeros(m);
        for key in keys {
            let h1 = hash64_seed(key, 0x51ed_270b);
            let h2 = hash64_seed(key, 0xb492_b66f) | 1;
            for i in 0..k {
                let pos = (h1.wrapping_add((i as u64).wrapping_mul(h2)) % m as u64) as usize;
                bits.set(pos);
            }
        }
        Self {
            bits,
            k,
            num_keys: keys.len(),
        }
    }

    /// Convenience constructor from owned keys.
    pub fn from_keys(keys: &[Vec<u8>], bits_per_key: f64) -> Self {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        Self::new(&refs, bits_per_key)
    }

    /// Number of probe hashes.
    pub fn probes(&self) -> u32 {
        self.k
    }

    /// Bits of filter per stored key.
    pub fn bits_per_key(&self) -> f64 {
        self.bits.len() as f64 / self.num_keys.max(1) as f64
    }

    /// Appends this filter's raw image to `out`: bit-array length, probe
    /// count, key count, then the raw words. No framing or checksum — the
    /// storage layer wraps images in its own CRC frame.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.bits.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u64).to_le_bytes());
        for &w in self.bits.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Rebuilds a filter from a [`BloomFilter::serialize`] image. A body
    /// whose length disagrees with the stored bit count (semantic
    /// truncation inside a valid frame) is a typed `Corruption` error.
    pub fn deserialize(buf: &[u8]) -> Result<Self> {
        let bad = |what: String| MemtreeError::corruption("bloom-image", what);
        if buf.len() < 20 {
            return Err(bad(format!("header needs 20 bytes, image has {}", buf.len())));
        }
        let m = u64::from_le_bytes(buf[0..8].try_into().unwrap()) as usize;
        let k = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let num_keys = u64::from_le_bytes(buf[12..20].try_into().unwrap()) as usize;
        if m < 64 || !(1..=30).contains(&k) {
            return Err(bad(format!("implausible geometry m={m} k={k}")));
        }
        let body = &buf[20..];
        if body.len() != m.div_ceil(64) * 8 {
            return Err(bad(format!(
                "bit array length {m} disagrees with body of {} bytes",
                body.len()
            )));
        }
        let words: Vec<u64> = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let bits = BitVector::from_words(words, m)
            .ok_or_else(|| bad("padding bits set past the bit array".to_string()))?;
        Ok(Self { bits, k, num_keys })
    }
}

impl PointFilter for BloomFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        let m = self.bits.len() as u64;
        let h1 = hash64_seed(key, 0x51ed_270b);
        let h2 = hash64_seed(key, 0xb492_b66f) | 1;
        (0..self.k).all(|i| {
            self.bits
                .get((h1.wrapping_add((i as u64).wrapping_mul(h2)) % m) as usize)
        })
    }

    fn size_bytes(&self) -> usize {
        self.bits.mem_usage()
    }
}

// ---------------------------------------------------------------------------
// Adaptive Range Filter
// ---------------------------------------------------------------------------

const ARF_NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct ArfNode {
    /// `ARF_NIL` for leaves.
    left: u32,
    right: u32,
    /// Leaf payload: may the range contain keys?
    occupied: bool,
}

/// The Adaptive Range Filter over `u64` keys.
///
/// Usage: [`Arf::new`] → repeated [`Arf::train`] with representative
/// queries and ground truth → [`Arf::freeze`] (drops the key set) →
/// serve [`Arf::may_contain_range_u64`].
#[derive(Debug)]
pub struct Arf {
    nodes: Vec<ArfNode>,
    root: u32,
    /// Sorted keys; retained only until [`Arf::freeze`].
    keys: Vec<u64>,
    /// Maximum encoded size in bits (~2 bits per node, as in the paper's
    /// breadth-first shape + leaf encoding).
    budget_bits: usize,
    frozen: bool,
}

impl Arf {
    /// Creates an untrained filter (a single occupied leaf covering the
    /// whole key space).
    pub fn new(mut keys: Vec<u64>, budget_bits: usize) -> Self {
        keys.sort_unstable();
        keys.dedup();
        let root_occupied = !keys.is_empty();
        Self {
            nodes: vec![ArfNode {
                left: ARF_NIL,
                right: ARF_NIL,
                occupied: root_occupied,
            }],
            root: 0,
            keys,
            budget_bits,
            frozen: false,
        }
    }

    fn encoded_bits(&self) -> usize {
        // Shape: 1 bit per node; leaf occupancy: 1 bit per leaf. ~2n bits.
        2 * self.nodes.len()
    }

    fn keys_in(&self, lo: u64, hi: u64) -> bool {
        // Any key in [lo, hi]?
        let i = self.keys.partition_point(|&k| k < lo);
        i < self.keys.len() && self.keys[i] <= hi
    }

    /// Trains with one query: if the filter answers "maybe" on a range the
    /// ground truth says is empty, split the responsible occupied leaves
    /// (while the budget allows) so the empty region gets its own leaf.
    pub fn train(&mut self, qlo: u64, qhi: u64, truth: bool) {
        assert!(!self.frozen, "cannot train a frozen ARF");
        if truth {
            return; // nothing to learn from true positives
        }
        self.refine(self.root, 0, u64::MAX, qlo, qhi);
    }

    fn refine(&mut self, node: u32, lo: u64, hi: u64, qlo: u64, qhi: u64) {
        if qhi < lo || qlo > hi {
            return;
        }
        let n = self.nodes[node as usize];
        if n.left != ARF_NIL {
            let mid = lo + (hi - lo) / 2;
            self.refine(n.left, lo, mid, qlo, qhi);
            self.refine(n.right, mid + 1, hi, qlo, qhi);
            return;
        }
        if !n.occupied {
            return; // already answers false here
        }
        // Occupied leaf overlapping an empty query range: split until the
        // query region separates from the keys (or budget/precision ends).
        if self.encoded_bits() + 2 > self.budget_bits || lo == hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let left = ArfNode {
            left: ARF_NIL,
            right: ARF_NIL,
            occupied: self.keys_in(lo, mid),
        };
        let right = ArfNode {
            left: ARF_NIL,
            right: ARF_NIL,
            occupied: self.keys_in(mid + 1, hi),
        };
        self.nodes.push(left);
        let li = (self.nodes.len() - 1) as u32;
        self.nodes.push(right);
        let ri = (self.nodes.len() - 1) as u32;
        let n = &mut self.nodes[node as usize];
        n.left = li;
        n.right = ri;
        // Recurse into the halves that still conflict.
        self.refine(li, lo, mid, qlo, qhi);
        self.refine(ri, mid + 1, hi, qlo, qhi);
    }

    /// Ends training: drops the key set (the deployed filter is the
    /// encoded tree alone, as in the paper).
    pub fn freeze(&mut self) {
        self.keys = Vec::new();
        self.frozen = true;
        self.nodes.shrink_to_fit();
    }

    /// Range membership test on `[lo, hi]` (inclusive, integer space).
    pub fn may_contain_range_u64(&self, qlo: u64, qhi: u64) -> bool {
        self.query(self.root, 0, u64::MAX, qlo, qhi)
    }

    fn query(&self, node: u32, lo: u64, hi: u64, qlo: u64, qhi: u64) -> bool {
        if qhi < lo || qlo > hi {
            return false;
        }
        let n = self.nodes[node as usize];
        if n.left == ARF_NIL {
            return n.occupied;
        }
        let mid = lo + (hi - lo) / 2;
        self.query(n.left, lo, mid, qlo, qhi) || self.query(n.right, mid + 1, hi, qlo, qhi)
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl PointFilter for Arf {
    fn may_contain(&self, key: &[u8]) -> bool {
        let k = memtree_common::key::decode_u64(key);
        self.may_contain_range_u64(k, k)
    }

    fn size_bytes(&self) -> usize {
        if self.frozen {
            // Deployed size: the encoded bit sequence.
            self.encoded_bits().div_ceil(8)
        } else {
            vec_bytes(&self.nodes) + vec_bytes(&self.keys)
        }
    }
}

impl RangeFilter for Arf {
    fn may_contain_range(&self, low: &[u8], high: &[u8]) -> bool {
        let lo = memtree_common::key::decode_u64(low);
        let hi = memtree_common::key::decode_u64(high);
        if lo >= hi {
            return false;
        }
        self.may_contain_range_u64(lo, hi - 1) // [low, high) convention
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::hash::splitmix64;
    use memtree_common::key::encode_u64;

    #[test]
    fn bloom_no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..10_000u64).map(|i| encode_u64(i * 7).to_vec()).collect();
        let f = BloomFilter::from_keys(&keys, 14.0);
        for k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn bloom_fpr_near_theory() {
        let keys: Vec<Vec<u8>> = (0..50_000u64).map(|i| encode_u64(i).to_vec()).collect();
        let f = BloomFilter::from_keys(&keys, 14.0);
        let mut fp = 0;
        let trials = 50_000;
        for i in 0..trials {
            let q = encode_u64(1_000_000 + i as u64);
            if f.may_contain(&q) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / trials as f64;
        // Theory for 14 bits/key, k=10: ~0.08%. Allow generous headroom.
        assert!(fpr < 0.005, "FPR {fpr}");
    }

    #[test]
    fn bloom_more_bits_fewer_fps() {
        let keys: Vec<Vec<u8>> = (0..20_000u64).map(|i| encode_u64(i * 3).to_vec()).collect();
        let fpr = |bpk: f64| {
            let f = BloomFilter::from_keys(&keys, bpk);
            let mut fp = 0;
            for i in 0..20_000u64 {
                if f.may_contain(&encode_u64(i * 3 + 1)) {
                    fp += 1;
                }
            }
            fp as f64 / 20_000.0
        };
        let (lo, hi) = (fpr(4.0), fpr(12.0));
        assert!(hi < lo, "12bpk {hi} should beat 4bpk {lo}");
    }

    #[test]
    fn bloom_serialize_roundtrip_is_bit_identical() {
        for (n, bpk) in [(0usize, 14.0), (1, 10.0), (10_000, 14.0), (5000, 4.0)] {
            let keys: Vec<Vec<u8>> = (0..n as u64).map(|i| encode_u64(i * 3).to_vec()).collect();
            let f = BloomFilter::from_keys(&keys, bpk);
            let mut img = Vec::new();
            f.serialize(&mut img);
            let d = BloomFilter::deserialize(&img).unwrap();
            assert_eq!(d.probes(), f.probes());
            assert_eq!(d.bits_per_key(), f.bits_per_key());
            assert_eq!(d.size_bytes(), f.size_bytes());
            for i in 0..(2 * n.max(64)) as u64 {
                let q = encode_u64(i);
                assert_eq!(d.may_contain(&q), f.may_contain(&q), "n={n} key {i}");
            }
        }
    }

    #[test]
    fn bloom_damaged_images_are_typed_errors() {
        let keys: Vec<Vec<u8>> = (0..1000u64).map(|i| encode_u64(i).to_vec()).collect();
        let f = BloomFilter::from_keys(&keys, 10.0);
        let mut img = Vec::new();
        f.serialize(&mut img);
        for cut in 0..img.len() {
            assert!(
                BloomFilter::deserialize(&img[..cut]).is_err(),
                "truncation to {cut} must fail"
            );
        }
        let mut padded = img.clone();
        padded.push(0);
        assert!(BloomFilter::deserialize(&padded).is_err(), "trailing byte");
        let mut zero_k = img.clone();
        zero_k[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(BloomFilter::deserialize(&zero_k).is_err(), "k=0 geometry");
    }

    #[test]
    fn arf_no_false_negatives_after_training() {
        let mut state = 5u64;
        let keys: Vec<u64> = (0..5000).map(|_| splitmix64(&mut state)).collect();
        let mut arf = Arf::new(keys.clone(), 70_000);
        // Train with empty ranges between keys.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2).step_by(3) {
            if w[1] - w[0] > 2 {
                arf.train(w[0] + 1, w[1] - 1, false);
            }
        }
        arf.freeze();
        for &k in &keys {
            assert!(arf.may_contain_range_u64(k, k), "false negative {k}");
            assert!(arf.may_contain_range_u64(k.saturating_sub(10), k.saturating_add(10)));
        }
    }

    #[test]
    fn arf_learns_trained_empty_ranges() {
        // Keys clustered low; train on high empty ranges.
        let keys: Vec<u64> = (0..1000).map(|i| i * 1000).collect();
        let mut arf = Arf::new(keys, 100_000);
        for i in 0..200u64 {
            let lo = (1 << 40) + i * (1 << 20);
            arf.train(lo, lo + (1 << 19), false);
        }
        arf.freeze();
        let mut rejected = 0;
        for i in 0..200u64 {
            let lo = (1 << 40) + i * (1 << 20);
            if !arf.may_contain_range_u64(lo, lo + (1 << 19)) {
                rejected += 1;
            }
        }
        assert!(rejected > 150, "only {rejected}/200 learned");
        // Untrained queries in the key cluster still answer true.
        assert!(arf.may_contain_range_u64(0, 100));
    }

    #[test]
    fn arf_respects_budget() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 12345).collect();
        let budget = 10_000; // bits
        let mut arf = Arf::new(keys, budget);
        let mut state = 1u64;
        for _ in 0..5000 {
            let lo = splitmix64(&mut state);
            arf.train(lo, lo.saturating_add(1 << 30), false);
        }
        assert!(
            2 * arf.num_nodes() <= budget + 2,
            "nodes {} exceed budget",
            arf.num_nodes()
        );
        arf.freeze();
        assert!(arf.size_bytes() <= budget / 8 + 1);
    }

    #[test]
    fn arf_byte_key_adapter() {
        let keys: Vec<u64> = (0..100).map(|i| i * 1_000_000).collect();
        let mut arf = Arf::new(keys, 10_000);
        arf.train(50, 900_000, false);
        arf.freeze();
        assert!(arf.may_contain(&encode_u64(2_000_000)));
        assert!(!arf.may_contain_range_u64(0, 0) || arf.may_contain_range_u64(0, 0));
        // Half-open [low, high) convention via the byte interface.
        use memtree_common::traits::RangeFilter as _;
        assert!(arf.may_contain_range(&encode_u64(0), &encode_u64(1)));
    }
}

// ---------------------------------------------------------------------------
// Dynamic Bloom filter
// ---------------------------------------------------------------------------

/// An insert-supporting Bloom filter sized for an expected capacity — the
/// filter the hybrid index keeps in front of its dynamic stage (§5.1).
#[derive(Debug)]
pub struct DynamicBloom {
    bits: BitVector,
    k: u32,
    inserted: usize,
}

impl DynamicBloom {
    /// Creates a filter for ~`expected` keys at `bits_per_key`.
    pub fn new(expected: usize, bits_per_key: f64) -> Self {
        let m = ((expected as f64 * bits_per_key).ceil() as usize).max(1024);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        Self {
            bits: BitVector::zeros(m),
            k,
            inserted: 0,
        }
    }

    /// Adds a key.
    pub fn add(&mut self, key: &[u8]) {
        let m = self.bits.len() as u64;
        let h1 = hash64_seed(key, 0x51ed_270b);
        let h2 = hash64_seed(key, 0xb492_b66f) | 1;
        for i in 0..self.k {
            self.bits
                .set((h1.wrapping_add((i as u64).wrapping_mul(h2)) % m) as usize);
        }
        self.inserted += 1;
    }

    /// Clears all bits (after a hybrid-index merge drains the dynamic
    /// stage).
    pub fn reset(&mut self) {
        self.bits = BitVector::zeros(self.bits.len());
        self.inserted = 0;
    }

    /// Keys added since the last reset.
    pub fn inserted(&self) -> usize {
        self.inserted
    }
}

impl PointFilter for DynamicBloom {
    fn may_contain(&self, key: &[u8]) -> bool {
        let m = self.bits.len() as u64;
        let h1 = hash64_seed(key, 0x51ed_270b);
        let h2 = hash64_seed(key, 0xb492_b66f) | 1;
        (0..self.k).all(|i| {
            self.bits
                .get((h1.wrapping_add((i as u64).wrapping_mul(h2)) % m) as usize)
        })
    }

    fn size_bytes(&self) -> usize {
        self.bits.mem_usage()
    }
}

#[cfg(test)]
mod dynamic_bloom_tests {
    use super::*;
    use memtree_common::key::encode_u64;
    use memtree_common::traits::PointFilter;

    #[test]
    fn add_and_query() {
        let mut b = DynamicBloom::new(10_000, 10.0);
        for i in 0..10_000u64 {
            b.add(&encode_u64(i * 2));
        }
        for i in 0..10_000u64 {
            assert!(b.may_contain(&encode_u64(i * 2)));
        }
        let mut fp = 0;
        for i in 0..10_000u64 {
            if b.may_contain(&encode_u64(i * 2 + 1)) {
                fp += 1;
            }
        }
        assert!(fp < 300, "fp={fp}");
        b.reset();
        assert!(!b.may_contain(&encode_u64(0)));
        assert_eq!(b.inserted(), 0);
    }
}
