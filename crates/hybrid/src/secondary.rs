//! Secondary (non-unique) index support (§5.3.5).
//!
//! The Compaction rule stores each key once followed by an array of its
//! values. [`SecondaryIndex`] realizes that for any inner index: the tree
//! maps each distinct key to a slot in a value-list arena, so duplicate
//! keys are never materialized. Value updates happen **in place** even
//! when the key lives in the static stage — the thesis does this to keep a
//! key's value list in one stage (§5.1).

use memtree_common::mem::vec_bytes;
use memtree_common::traits::{OrderedIndex, Value};

/// A non-unique index over any [`OrderedIndex`] (including hybrids).
#[derive(Debug, Default)]
pub struct SecondaryIndex<I: OrderedIndex + Default> {
    index: I,
    /// Value lists; tree values are slots in this arena.
    lists: Vec<Vec<Value>>,
    /// Free slots from fully-deleted keys.
    free: Vec<u32>,
    len: usize,
}

impl<I: OrderedIndex + Default> SecondaryIndex<I> {
    /// Creates an empty secondary index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates from a specific inner index (e.g. a configured hybrid).
    pub fn from_index(index: I) -> Self {
        Self {
            index,
            lists: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Adds `value` under `key` (duplicates allowed).
    pub fn insert(&mut self, key: &[u8], value: Value) {
        match self.index.get(key) {
            Some(slot) => self.lists[slot as usize].push(value),
            None => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.lists[s as usize].clear();
                        self.lists[s as usize].push(value);
                        s
                    }
                    None => {
                        self.lists.push(vec![value]);
                        (self.lists.len() - 1) as u32
                    }
                };
                self.index.insert(key, slot as Value);
            }
        }
        self.len += 1;
    }

    /// All values for `key` (empty slice if absent).
    pub fn get(&self, key: &[u8]) -> &[Value] {
        match self.index.get(key) {
            Some(slot) => &self.lists[slot as usize],
            None => &[],
        }
    }

    /// Removes one `(key, value)` pair; drops the key when its list
    /// empties. Returns whether the pair existed.
    pub fn remove(&mut self, key: &[u8], value: Value) -> bool {
        let Some(slot) = self.index.get(key) else {
            return false;
        };
        let list = &mut self.lists[slot as usize];
        let Some(pos) = list.iter().position(|&v| v == value) else {
            return false;
        };
        list.swap_remove(pos);
        self.len -= 1;
        if list.is_empty() {
            self.index.remove(key);
            self.free.push(slot as u32);
        }
        true
    }

    /// Scans values in key order from the first key `>= low`, flattening
    /// each key's value list; collects at most `n` values.
    pub fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.index.range_from(low, &mut |_k, slot| {
            for &v in &self.lists[slot as usize] {
                if out.len() - before == n {
                    return false;
                }
                out.push(v);
            }
            out.len() - before < n
        });
        out.len() - before
    }

    /// Total `(key, value)` pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.index.len()
    }

    /// Heap bytes: inner index + value arena.
    pub fn mem_usage(&self) -> usize {
        self.index.mem_usage()
            + vec_bytes(&self.lists)
            + self.lists.iter().map(vec_bytes).sum::<usize>()
            + vec_bytes(&self.free)
    }

    /// Access to the inner index (e.g. to force merges in benches).
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HybridBTree;
    use memtree_common::key::encode_u64;

    #[test]
    fn multi_values_per_key() {
        let mut s: SecondaryIndex<HybridBTree> = SecondaryIndex::new();
        for i in 0..1000u64 {
            for rep in 0..10u64 {
                s.insert(&encode_u64(i), i * 100 + rep);
            }
        }
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.num_keys(), 1000);
        let vals = s.get(&encode_u64(5));
        assert_eq!(vals.len(), 10);
        assert!(vals.contains(&503));
        assert!(s.get(&encode_u64(5000)).is_empty());
    }

    #[test]
    fn remove_values_and_keys() {
        let mut s: SecondaryIndex<HybridBTree> = SecondaryIndex::new();
        s.insert(b"k", 1);
        s.insert(b"k", 2);
        assert!(s.remove(b"k", 1));
        assert!(!s.remove(b"k", 1));
        assert_eq!(s.get(b"k"), &[2]);
        assert!(s.remove(b"k", 2));
        assert!(s.get(b"k").is_empty());
        assert_eq!(s.num_keys(), 0);
        // Slot reuse.
        s.insert(b"j", 9);
        assert_eq!(s.get(b"j"), &[9]);
    }

    #[test]
    fn scan_flattens_lists() {
        let mut s: SecondaryIndex<HybridBTree> = SecondaryIndex::new();
        for i in 0..100u64 {
            s.insert(&encode_u64(i), i * 2);
            s.insert(&encode_u64(i), i * 2 + 1);
        }
        let mut out = Vec::new();
        s.scan(&encode_u64(10), 6, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![20, 21, 22, 23, 24, 25]);
    }

    #[test]
    fn key_stored_once_saves_memory() {
        // 10 values per key: secondary arena vs naive duplicated keys.
        let mut s: SecondaryIndex<HybridBTree> = SecondaryIndex::new();
        let mut naive = memtree_btree::BPlusTree::new();
        use memtree_common::traits::OrderedIndex as _;
        for i in 0..5000u64 {
            for rep in 0..10u64 {
                s.insert(&encode_u64(i), rep);
                // Naive secondary: key suffixed with value to fake duplicates.
                let mut k = encode_u64(i).to_vec();
                k.extend_from_slice(&encode_u64(rep));
                naive.insert(&k, rep);
            }
        }
        s.inner_mut().force_merge().unwrap();
        assert!(
            (s.mem_usage() as f64) < 0.6 * naive.mem_usage() as f64,
            "secondary {} vs naive {}",
            s.mem_usage(),
            naive.mem_usage()
        );
    }
}
