//! The Hybrid Index: a dual-stage architecture (Chapter 5, Figure 5.1).
//!
//! A hybrid index is one logical index made of two physical trees: a small
//! **dynamic stage** that absorbs every write, and a compact, read-only
//! **static stage** holding the bulk of the entries. A ratio-based trigger
//! (default 10) periodically *merges* the dynamic stage into the static
//! stage (merge-all strategy, §5.2.2); a Bloom filter over the dynamic
//! stage lets most point reads skip straight to the static stage.
//!
//! The generic [`DualStage`] implements the Dual-Stage Transformation for
//! any `(OrderedIndex, StaticIndex)` pair; the thesis's four instantiations
//! are exported as type aliases ([`HybridBTree`], [`HybridMasstree`],
//! [`HybridSkipList`], [`HybridArt`]) plus the Compression-rule variant
//! [`HybridCompressedBTree`].

#![warn(missing_docs)]

use memtree_common::error::MemtreeError;
use memtree_common::traits::{BatchProbe, OrderedIndex, PointFilter, StaticIndex, Value};
use memtree_filters::DynamicBloom;
use std::collections::HashSet;
use std::time::{Duration, Instant};

pub mod secondary;
pub use secondary::SecondaryIndex;

/// What to merge (§5.2.2). The thesis ships merge-all and discusses
/// merge-cold as the other end of a tunable spectrum; we implement both so
/// the trade-off can be measured (see `repro fig5_7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Move every dynamic-stage entry (the thesis default): treats the
    /// dynamic stage as a write buffer, minimizing merge frequency.
    All,
    /// Keep recently re-written keys in the dynamic stage (a write-back
    /// cache): shortcuts hot updates at the price of more frequent merges
    /// and per-key tracking overhead.
    Cold,
}

/// When to move the dynamic stage into the static stage (§5.2.2).
#[derive(Debug, Clone, Copy)]
pub enum MergeTrigger {
    /// Merge when `static_mem <= dynamic_mem * ratio` — the thesis default
    /// (ratio 10), which keeps merge cost amortized-constant over time.
    Ratio(usize),
    /// Merge when the dynamic stage exceeds a fixed byte size — better for
    /// read-mostly workloads, too merge-happy for OLTP (§5.2.2).
    ConstantBytes(usize),
    /// Never merge automatically (manual [`DualStage::force_merge`] only).
    Manual,
}

/// Statistics over the lifetime of a hybrid index.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeStats {
    /// Completed merges.
    pub merges: u64,
    /// Merge attempts that failed (the index stayed in its pre-merge
    /// state; see the crash-consistency contract on
    /// [`DualStage::force_merge`]).
    pub failed_merges: u64,
    /// Failed attempts that were retried by
    /// [`DualStage::merge_with_retry`] (each retry waits an
    /// exponentially growing backoff).
    pub merge_retries: u64,
    /// Total blocking time spent merging.
    pub total_merge_time: Duration,
    /// Duration of the most recent merge.
    pub last_merge_time: Duration,
    /// Static-stage entry count at the most recent merge.
    pub last_merge_static_len: usize,
}

/// Maximum attempts an automatic (trigger-driven) merge makes before
/// giving up until the next trigger.
pub const MERGE_MAX_ATTEMPTS: u32 = 3;
/// First retry backoff; doubles per retry, capped at [`MERGE_BACKOFF_CAP`].
pub const MERGE_BACKOFF_START: Duration = Duration::from_micros(100);
/// Upper bound on the per-retry backoff sleep.
pub const MERGE_BACKOFF_CAP: Duration = Duration::from_millis(10);

/// The dual-stage hybrid index.
#[derive(Debug)]
pub struct DualStage<D: OrderedIndex + Default, S: StaticIndex> {
    dynamic: D,
    stat: Option<S>,
    bloom: Option<DynamicBloom>,
    trigger: MergeTrigger,
    strategy: MergeStrategy,
    /// Keys re-written (updated or re-inserted) since the last merge —
    /// merge-cold's hotness signal.
    hot: HashSet<Vec<u8>>,
    /// Keys deleted from the static stage, reclaimed at the next merge.
    tombstones: HashSet<Vec<u8>>,
    stats: MergeStats,
    len: usize,
}

/// Expected dynamic-stage capacity used to size the Bloom filter.
const BLOOM_EXPECTED: usize = 1 << 17;
/// Bloom bits per dynamic-stage key (the thesis calls the overhead
/// "negligible"; 10 bits/key at a bounded stage size is).
const BLOOM_BITS_PER_KEY: f64 = 10.0;

impl<D: OrderedIndex + Default, S: StaticIndex> Default for DualStage<D, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: OrderedIndex + Default, S: StaticIndex> DualStage<D, S> {
    /// Creates a hybrid index with the thesis defaults (ratio-10 trigger,
    /// Bloom filter enabled).
    pub fn new() -> Self {
        Self::with_config(MergeTrigger::Ratio(10), true)
    }

    /// Creates a hybrid index with an explicit trigger and Bloom choice.
    pub fn with_config(trigger: MergeTrigger, bloom: bool) -> Self {
        Self::with_strategy(trigger, bloom, MergeStrategy::All)
    }

    /// Creates a hybrid index with full control of the merge policy.
    pub fn with_strategy(trigger: MergeTrigger, bloom: bool, strategy: MergeStrategy) -> Self {
        Self {
            dynamic: D::default(),
            stat: None,
            bloom: bloom.then(|| DynamicBloom::new(BLOOM_EXPECTED, BLOOM_BITS_PER_KEY)),
            trigger,
            strategy,
            hot: HashSet::new(),
            tombstones: HashSet::new(),
            stats: MergeStats::default(),
            len: 0,
        }
    }

    /// Lifetime merge statistics.
    pub fn merge_stats(&self) -> MergeStats {
        self.stats
    }

    /// Entries currently in the dynamic stage.
    pub fn dynamic_len(&self) -> usize {
        self.dynamic.len()
    }

    /// Entries currently in the static stage.
    pub fn static_len(&self) -> usize {
        self.stat.as_ref().map_or(0, |s| s.len())
    }

    fn static_get(&self, key: &[u8]) -> Option<Value> {
        if self.tombstones.contains(key) {
            return None;
        }
        self.stat.as_ref()?.get(key)
    }

    fn bloom_may_contain(&self, key: &[u8]) -> bool {
        self.bloom.as_ref().is_none_or(|b| b.may_contain(key))
    }

    fn should_merge(&self) -> bool {
        match self.trigger {
            MergeTrigger::Ratio(r) => {
                // Entry-count ratio: merging when the dynamic stage reaches
                // 1/r of the static stage keeps the per-entry amortized
                // merge cost constant (each entry is re-merged ~r times).
                // A minimum dynamic size stops tiny indexes from merging on
                // every insert.
                let dyn_len = self.dynamic.len();
                dyn_len >= 4096 && dyn_len * r >= self.static_len().max(1)
            }
            MergeTrigger::ConstantBytes(bytes) => self.dynamic.mem_usage() >= bytes,
            MergeTrigger::Manual => false,
        }
    }

    /// Merges the dynamic stage into the static stage (blocking,
    /// merge-all). The core is a linear merge of two sorted runs — the
    /// array extension of §5.2.1.
    ///
    /// # Crash consistency
    ///
    /// The merge builds the replacement static stage entirely off to the
    /// side and commits it with an atomic in-memory swap only after the
    /// build succeeds. If the merge fails partway (e.g. via an armed
    /// [`memtree_faults`] point such as `hybrid.merge.prepare`,
    /// `hybrid.merge.build`, or `hybrid.merge.swap`), the index is left
    /// exactly as it was: both stages, tombstones, Bloom filter, and hot
    /// set are untouched, and every key remains readable.
    pub fn force_merge(&mut self) -> Result<(), MemtreeError> {
        match self.try_merge() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.failed_merges += 1;
                Err(e)
            }
        }
    }

    fn try_merge(&mut self) -> Result<(), MemtreeError> {
        let start = Instant::now();
        memtree_faults::fail_point!("hybrid.merge.prepare");
        // Snapshot the dynamic stage without draining it — nothing is
        // mutated until the commit point below.
        let mut dyn_entries: Vec<(Vec<u8>, Value)> = Vec::with_capacity(self.dynamic.len());
        self.dynamic
            .for_each_sorted(&mut |k, v| dyn_entries.push((k.to_vec(), v)));
        // Merge-cold: recently re-written keys go back to the dynamic
        // stage instead of migrating — unless nearly everything is hot
        // (then retaining would starve the merge, §5.2.2's caveat).
        let mut retained: Vec<(Vec<u8>, Value)> = Vec::new();
        if self.strategy == MergeStrategy::Cold && self.hot.len() * 2 < dyn_entries.len() {
            let hot = &self.hot;
            let (keep, merge): (Vec<_>, Vec<_>) =
                dyn_entries.into_iter().partition(|(k, _)| hot.contains(k));
            retained = keep;
            dyn_entries = merge;
        }
        let mut merged: Vec<(Vec<u8>, Value)> =
            Vec::with_capacity(dyn_entries.len() + self.static_len());
        match self.stat.as_ref() {
            None => {
                merged.extend(
                    dyn_entries
                        .into_iter()
                        .filter(|(k, _)| !self.tombstones.contains(k)),
                );
            }
            Some(old) => {
                // In-order merge of the static run and the dynamic run;
                // dynamic entries shadow static ones, tombstones drop them.
                let mut di = dyn_entries.into_iter().peekable();
                old.for_each_sorted(&mut |k, v| {
                    while let Some((dk, _)) = di.peek() {
                        if dk.as_slice() < k {
                            let (dk, dv) = di.next().unwrap();
                            if !self.tombstones.contains(&dk) {
                                merged.push((dk, dv));
                            }
                        } else {
                            break;
                        }
                    }
                    let shadowed = di.peek().is_some_and(|(dk, _)| dk.as_slice() == k);
                    if shadowed {
                        let (dk, dv) = di.next().unwrap();
                        if !self.tombstones.contains(&dk) {
                            merged.push((dk, dv));
                        }
                    } else if !self.tombstones.contains(k) {
                        merged.push((k.to_vec(), v));
                    }
                });
                for (dk, dv) in di {
                    if !self.tombstones.contains(&dk) {
                        merged.push((dk, dv));
                    }
                }
            }
        }
        memtree_faults::fail_point!("hybrid.merge.build");
        let new_stat = S::build(&merged);
        memtree_faults::fail_point!("hybrid.merge.swap");

        // ---- commit point: everything below is infallible. ----
        // Retained hot keys that shadow a surviving static copy must not
        // be double-counted.
        let retained_new = retained
            .iter()
            .filter(|(k, _)| merged.binary_search_by(|(m, _)| m.cmp(k)).is_err())
            .count();
        self.len = merged.len() + retained_new;
        self.stat = Some(new_stat);
        self.dynamic.clear();
        self.tombstones.clear();
        self.hot.clear();
        if let Some(b) = &mut self.bloom {
            b.reset();
        }
        for (k, v) in retained {
            // Retained hot keys shadow their (now re-merged) static copies.
            if let Some(b) = &mut self.bloom {
                b.add(&k);
            }
            self.dynamic.insert(&k, v);
        }
        let elapsed = start.elapsed();
        self.stats.merges += 1;
        self.stats.total_merge_time += elapsed;
        self.stats.last_merge_time = elapsed;
        self.stats.last_merge_static_len = self.len;
        Ok(())
    }

    /// [`force_merge`](Self::force_merge) with bounded retry and
    /// exponential backoff. Each failed attempt bumps
    /// [`MergeStats::merge_retries`] and sleeps (100µs doubling, capped
    /// at 10ms) before trying again; after `max_attempts` failures it
    /// gives up with [`MemtreeError::MergeFailed`]. The index stays fully
    /// readable throughout.
    pub fn merge_with_retry(&mut self, max_attempts: u32) -> Result<(), MemtreeError> {
        let mut backoff = MERGE_BACKOFF_START;
        for attempt in 1..=max_attempts.max(1) {
            match self.force_merge() {
                Ok(()) => return Ok(()),
                Err(_) if attempt < max_attempts => {
                    self.stats.merge_retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(MERGE_BACKOFF_CAP);
                }
                Err(_) => break,
            }
        }
        Err(MemtreeError::MergeFailed {
            attempts: max_attempts.max(1),
        })
    }

    fn maybe_merge(&mut self) {
        if self.should_merge() {
            // A merge that keeps failing is survivable: writes continue to
            // land in the dynamic stage and the trigger re-fires on the
            // next insert. `failed_merges` records the degradation.
            let _ = self.merge_with_retry(MERGE_MAX_ATTEMPTS);
        }
    }
}

impl<D: OrderedIndex + Default, S: StaticIndex> OrderedIndex for DualStage<D, S> {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        // Primary-index uniqueness check spans both stages (§5.3.2 calls
        // this the main insert-throughput cost).
        if self.dynamic.get(key).is_some() || self.static_get(key).is_some() {
            return false;
        }
        self.dynamic.insert(key, value);
        self.tombstones.remove(key);
        if let Some(b) = &mut self.bloom {
            b.add(key);
        }
        self.len += 1;
        self.maybe_merge();
        true
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        if self.bloom_may_contain(key) {
            if let Some(v) = self.dynamic.get(key) {
                return Some(v);
            }
        }
        self.static_get(key)
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        // Primary-index update: in place if dynamic, otherwise shadow the
        // static entry with a fresh dynamic one (§5.1).
        if self.dynamic.update(key, value) {
            if self.strategy == MergeStrategy::Cold {
                self.hot.insert(key.to_vec());
            }
            return true;
        }
        if self.static_get(key).is_some() {
            self.dynamic.insert(key, value);
            if self.strategy == MergeStrategy::Cold {
                self.hot.insert(key.to_vec());
            }
            if let Some(b) = &mut self.bloom {
                b.add(key);
            }
            self.maybe_merge();
            true
        } else {
            false
        }
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        let in_dynamic = self.dynamic.remove(key);
        let in_static = self.static_get(key).is_some();
        if in_static {
            self.tombstones.insert(key.to_vec());
        }
        if in_dynamic || in_static {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        // Collect the (small) dynamic side, then stream the static side
        // against it — static keys are compared in place, never copied.
        let mut dyn_part: Vec<(Vec<u8>, Value)> = Vec::new();
        self.dynamic.range_from(low, &mut |k, v| {
            if dyn_part.len() == n {
                return false;
            }
            dyn_part.push((k.to_vec(), v));
            dyn_part.len() < n
        });
        let before = out.len();
        let mut i = 0usize; // cursor into dyn_part
        if let Some(s) = &self.stat {
            s.range_from(low, &mut |k, v| {
                // Emit dynamic entries smaller than this static key.
                while i < dyn_part.len()
                    && out.len() - before < n
                    && dyn_part[i].0.as_slice() <= k
                {
                    let shadowing = dyn_part[i].0.as_slice() == k;
                    out.push(dyn_part[i].1);
                    i += 1;
                    if shadowing {
                        return out.len() - before < n;
                    }
                }
                if out.len() - before == n {
                    return false;
                }
                if !self.tombstones.contains(k) {
                    out.push(v);
                }
                out.len() - before < n
            });
        }
        while i < dyn_part.len() && out.len() - before < n {
            out.push(dyn_part[i].1);
            i += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        self.dynamic.mem_usage()
            + self.stat.as_ref().map_or(0, |s| s.mem_usage())
            + self.bloom.as_ref().map_or(0, |b| b.size_bytes())
            + self
                .tombstones
                .iter()
                .map(|k| k.len() + 48)
                .sum::<usize>()
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        self.range_from(&[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        // Full ordered co-iteration: materialize both streams lazily in
        // chunks would complicate; hybrid scans in the thesis are short, so
        // a straightforward merged walk over collected runs is acceptable
        // for correctness-critical full iterations too.
        let mut dyn_part: Vec<(Vec<u8>, Value)> = Vec::new();
        self.dynamic.range_from(low, &mut |k, v| {
            dyn_part.push((k.to_vec(), v));
            true
        });
        let mut stat_part: Vec<(Vec<u8>, Value)> = Vec::new();
        if let Some(s) = &self.stat {
            s.range_from(low, &mut |k, v| {
                if !self.tombstones.contains(k) {
                    stat_part.push((k.to_vec(), v));
                }
                true
            });
        }
        let (mut i, mut j) = (0, 0);
        while i < dyn_part.len() || j < stat_part.len() {
            let take_dyn = if j >= stat_part.len() {
                true
            } else if i >= dyn_part.len() {
                false
            } else {
                dyn_part[i].0 <= stat_part[j].0
            };
            let cont = if take_dyn {
                if j < stat_part.len() && dyn_part[i].0 == stat_part[j].0 {
                    j += 1; // shadowed
                }
                let r = f(&dyn_part[i].0, dyn_part[i].1);
                i += 1;
                r
            } else {
                let r = f(&stat_part[j].0, stat_part[j].1);
                j += 1;
                r
            };
            if !cont {
                return;
            }
        }
    }

    fn clear(&mut self) {
        self.dynamic.clear();
        self.stat = None;
        self.tombstones.clear();
        if let Some(b) = &mut self.bloom {
            b.reset();
        }
        self.len = 0;
    }
}

impl<D: OrderedIndex + Default, S: StaticIndex + BatchProbe> BatchProbe for DualStage<D, S> {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    /// Batched dual-stage probe: each key takes the Bloom-guarded dynamic
    /// probe first (the dynamic stage is small and hot in cache), and
    /// every unresolved, non-tombstoned key falls through to the static
    /// stage in **one** batched `multi_get` — so the static structure's
    /// own batching (level-synchronous trie descent, sorted-batch B+tree
    /// descent, …) amortizes its cache misses across the whole batch.
    fn multi_get(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        let base = out.len();
        out.resize(base + keys.len(), None);
        let mut pending_idx: Vec<u32> = Vec::new();
        let mut pending_keys: Vec<&[u8]> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if self.bloom_may_contain(key) {
                if let Some(v) = self.dynamic.get(key) {
                    out[base + i] = Some(v);
                    continue;
                }
            }
            if self.stat.is_some() && !self.tombstones.contains(key) {
                pending_idx.push(i as u32);
                pending_keys.push(key);
            }
        }
        if let Some(s) = &self.stat {
            let mut results = Vec::with_capacity(pending_keys.len());
            s.multi_get(&pending_keys, &mut results);
            for (&i, r) in pending_idx.iter().zip(results) {
                out[base + i as usize] = r;
            }
        }
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}

impl DualStage<memtree_btree::BPlusTree, memtree_btree::CompressedBTree> {
    /// Sets the static stage's decompressed-node cache capacity (0 = off) —
    /// the Figure 5.9 node-cache ablation knob.
    pub fn set_static_cache_blocks(&mut self, capacity: usize) {
        if let Some(s) = &mut self.stat {
            s.set_cache_blocks(capacity);
        }
    }
}

/// Hybrid B+tree: dynamic B+tree + Compact B+tree.
pub type HybridBTree = DualStage<memtree_btree::BPlusTree, memtree_btree::CompactBTree>;
/// Hybrid-Compressed B+tree: dynamic B+tree + block-compressed static leaves.
pub type HybridCompressedBTree =
    DualStage<memtree_btree::BPlusTree, memtree_btree::CompressedBTree>;
/// Hybrid Masstree: dynamic Masstree + Compact Masstree.
pub type HybridMasstree = DualStage<memtree_masstree::Masstree, memtree_masstree::CompactMasstree>;
/// Hybrid Skip List: paged skip list + Compact Skip List.
pub type HybridSkipList = DualStage<memtree_skiplist::SkipList, memtree_skiplist::CompactSkipList>;
/// Hybrid ART: dynamic ART + Compact ART.
pub type HybridArt = DualStage<memtree_art::Art, memtree_art::CompactArt>;

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::hash::splitmix64;
    use memtree_common::key::encode_u64;

    fn check_roundtrip<D: OrderedIndex + Default, S: StaticIndex>(name: &str) {
        let mut h: DualStage<D, S> = DualStage::with_config(MergeTrigger::Ratio(10), true);
        let mut state = 42u64;
        let mut keys = Vec::new();
        for _ in 0..20_000 {
            let k = splitmix64(&mut state) % 500_000;
            if h.insert(&encode_u64(k), k) {
                keys.push(k);
            }
        }
        assert!(h.merge_stats().merges > 0, "{name}: no merges happened");
        assert!(h.static_len() > h.dynamic_len(), "{name}: static should dominate");
        for &k in keys.iter().step_by(7) {
            assert_eq!(h.get(&encode_u64(k)), Some(k), "{name} get {k}");
        }
        assert_eq!(h.len(), keys.len(), "{name} len");
        // Sorted iteration across both stages.
        keys.sort_unstable();
        let mut got = Vec::new();
        h.for_each_sorted(&mut |_k, v| got.push(v));
        assert_eq!(got, keys, "{name} sorted iteration");
    }

    #[test]
    fn roundtrip_all_four_hybrids() {
        check_roundtrip::<memtree_btree::BPlusTree, memtree_btree::CompactBTree>("btree");
        check_roundtrip::<memtree_skiplist::SkipList, memtree_skiplist::CompactSkipList>(
            "skiplist",
        );
        check_roundtrip::<memtree_art::Art, memtree_art::CompactArt>("art");
        check_roundtrip::<memtree_masstree::Masstree, memtree_masstree::CompactMasstree>(
            "masstree",
        );
    }

    #[test]
    fn compressed_hybrid_works() {
        let mut h = HybridCompressedBTree::new();
        for i in 0..30_000u64 {
            assert!(h.insert(&encode_u64(i), i));
        }
        for i in (0..30_000u64).step_by(97) {
            assert_eq!(h.get(&encode_u64(i)), Some(i));
        }
    }

    #[test]
    fn duplicate_across_stages_rejected() {
        let mut h = HybridBTree::new();
        for i in 0..5000u64 {
            h.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        assert_eq!(h.dynamic_len(), 0);
        // Key now lives in the static stage; a re-insert must fail.
        assert!(!h.insert(&encode_u64(42), 999));
        assert_eq!(h.get(&encode_u64(42)), Some(42));
    }

    #[test]
    fn update_shadows_static_entry() {
        let mut h = HybridBTree::new();
        for i in 0..5000u64 {
            h.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        assert!(h.update(&encode_u64(100), 12345));
        assert_eq!(h.get(&encode_u64(100)), Some(12345));
        // After another merge the shadow wins permanently.
        h.force_merge().unwrap();
        assert_eq!(h.get(&encode_u64(100)), Some(12345));
        assert_eq!(h.len(), 5000);
        assert!(!h.update(&encode_u64(999_999), 1));
    }

    #[test]
    fn remove_via_tombstone() {
        let mut h = HybridBTree::new();
        for i in 0..5000u64 {
            h.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        assert!(h.remove(&encode_u64(7)));
        assert_eq!(h.get(&encode_u64(7)), None);
        assert!(!h.remove(&encode_u64(7)));
        assert_eq!(h.len(), 4999);
        // Reinsert after delete works and survives a merge.
        assert!(h.insert(&encode_u64(7), 77));
        assert_eq!(h.get(&encode_u64(7)), Some(77));
        h.force_merge().unwrap();
        assert_eq!(h.get(&encode_u64(7)), Some(77));
        assert_eq!(h.len(), 5000);
    }

    #[test]
    fn scan_merges_stages_in_order() {
        let mut h = HybridBTree::with_config(MergeTrigger::Manual, true);
        // Even keys to static, odd keys stay dynamic.
        for i in (0..1000u64).step_by(2) {
            h.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        for i in (1..1000u64).step_by(2) {
            h.insert(&encode_u64(i), i);
        }
        let mut out = Vec::new();
        h.scan(&encode_u64(100), 10, &mut out);
        assert_eq!(out, (100..110).collect::<Vec<_>>());
        // Update shadows during scan too.
        h.update(&encode_u64(104), 99999);
        out.clear();
        h.scan(&encode_u64(100), 10, &mut out);
        assert_eq!(out[4], 99999);
    }

    #[test]
    fn ratio_trigger_controls_merge_frequency() {
        let run = |ratio: usize| {
            let mut h = HybridBTree::with_config(MergeTrigger::Ratio(ratio), true);
            let mut state = 9u64;
            for _ in 0..30_000 {
                let k = splitmix64(&mut state);
                h.insert(&encode_u64(k), k);
            }
            h.merge_stats().merges
        };
        let low_ratio = run(2);
        let high_ratio = run(50);
        assert!(
            high_ratio > low_ratio,
            "ratio 50 merges ({high_ratio}) should exceed ratio 2 ({low_ratio})"
        );
    }

    #[test]
    fn multi_get_matches_per_key_across_stages() {
        fn check<D: OrderedIndex + Default, S: StaticIndex + BatchProbe>(name: &str) {
            let mut h: DualStage<D, S> = DualStage::with_config(MergeTrigger::Manual, true);
            // Static stage: even keys. Dynamic stage: odd keys. Plus
            // shadowed updates and tombstoned deletes on the static side.
            for i in (0..8000u64).step_by(2) {
                h.insert(&encode_u64(i), i);
            }
            h.force_merge().unwrap();
            for i in (1..8000u64).step_by(2) {
                h.insert(&encode_u64(i), i);
            }
            for i in (0..8000u64).step_by(100) {
                h.update(&encode_u64(i), i + 1_000_000);
            }
            for i in (2..8000u64).step_by(274) {
                h.remove(&encode_u64(i));
            }
            let probes: Vec<Vec<u8>> = (0..10_000u64)
                .map(|i| encode_u64(i.wrapping_mul(2654435761) % 9000).to_vec())
                .collect();
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let expect: Vec<Option<Value>> = refs.iter().map(|k| h.get(k)).collect();
            for chunk in [1usize, 16, 256, refs.len()] {
                let mut got = Vec::new();
                for c in refs.chunks(chunk) {
                    h.multi_get(c, &mut got);
                }
                assert_eq!(got, expect, "{name} chunk {chunk}");
            }
        }
        check::<memtree_btree::BPlusTree, memtree_btree::CompactBTree>("btree");
        check::<memtree_art::Art, memtree_art::CompactArt>("art");
        check::<memtree_skiplist::SkipList, memtree_skiplist::CompactSkipList>("skiplist");
    }

    #[test]
    fn memory_advantage_over_pure_dynamic() {
        let mut h = HybridBTree::new();
        let mut d = memtree_btree::BPlusTree::new();
        for i in 0..50_000u64 {
            h.insert(&encode_u64(i), i);
            d.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        assert!(
            (h.mem_usage() as f64) < 0.75 * d.mem_usage() as f64,
            "hybrid {} vs dynamic {}",
            h.mem_usage(),
            d.mem_usage()
        );
    }
}

#[cfg(test)]
mod merge_cold_tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn hot_keys_stay_in_dynamic_stage() {
        let mut h: HybridBTree =
            DualStage::with_strategy(MergeTrigger::Manual, true, MergeStrategy::Cold);
        for i in 0..10_000u64 {
            h.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        // A small hot set of re-writes (shadowing static copies) plus a
        // batch of fresh cold inserts.
        for i in 0..100u64 {
            assert!(h.update(&encode_u64(i), i + 1_000_000));
        }
        for i in 10_000..10_900u64 {
            assert!(h.insert(&encode_u64(i), i));
        }
        assert_eq!(h.dynamic_len(), 1000);
        h.force_merge().unwrap();
        // Hot keys were retained; cold inserts migrated.
        assert_eq!(h.dynamic_len(), 100, "hot keys should stay dynamic");
        assert_eq!(h.len(), 10_900, "no double counting");
        for i in 0..100u64 {
            assert_eq!(h.get(&encode_u64(i)), Some(i + 1_000_000));
        }
        for i in (100..10_000u64).step_by(501) {
            assert_eq!(h.get(&encode_u64(i)), Some(i));
        }
        // A second merge with no new heat migrates everything.
        h.force_merge().unwrap();
        assert_eq!(h.dynamic_len(), 0);
        assert_eq!(h.len(), 10_900);
        assert_eq!(h.get(&encode_u64(5)), Some(1_000_005));
    }

    #[test]
    fn all_hot_falls_back_to_merge_all() {
        let mut h: HybridBTree =
            DualStage::with_strategy(MergeTrigger::Manual, false, MergeStrategy::Cold);
        for i in 0..100u64 {
            h.insert(&encode_u64(i), i);
        }
        h.force_merge().unwrap();
        for i in 0..100u64 {
            h.update(&encode_u64(i), i + 1);
        }
        // Everything is hot: retaining all would starve the merge.
        h.force_merge().unwrap();
        assert_eq!(h.dynamic_len(), 0);
        assert_eq!(h.len(), 100);
        assert_eq!(h.get(&encode_u64(7)), Some(8));
    }
}
