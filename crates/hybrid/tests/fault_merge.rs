//! Differential fault-injection tests for the dual-stage merge: YCSB-style
//! op streams run against a `BTreeMap` reference model while merge fault
//! points fire at random. Invariants, across every seed:
//!
//! * no operation panics;
//! * every read returns exactly what the model holds;
//! * a failed merge leaves the index fully readable (crash consistency);
//! * once faults clear, merges succeed and nothing was lost.

use memtree_common::check::Gen;
use memtree_common::error::MemtreeError;
use memtree_faults as faults;
use memtree_hybrid::{HybridBTree, MergeTrigger};
use memtree_common::traits::OrderedIndex;
use std::collections::BTreeMap;

const MERGE_POINTS: [&str; 3] = [
    "hybrid.merge.prepare",
    "hybrid.merge.build",
    "hybrid.merge.swap",
];

fn key(g: &mut Gen) -> Vec<u8> {
    g.bytes_from(b"abcd", 1..8)
}

/// One YCSB-ish differential run; returns an error string on divergence.
fn run_differential(seed: u64, ops: usize) -> Result<(), String> {
    let mut g = Gen::new(seed);
    // Tiny byte trigger so merges fire constantly and fault points get
    // plenty of evaluations.
    let mut h = HybridBTree::with_config(MergeTrigger::ConstantBytes(2048), true);
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for step in 0..ops {
        match g.range(0..10) {
            // 40% insert, 20% read, 20% update, 10% remove, 10% scan —
            // write-heavy to stress merging.
            0..=3 => {
                let k = key(&mut g);
                let v = g.u64();
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k.clone(), v);
                }
                if h.insert(&k, v) != expect {
                    return Err(format!("seed {seed} step {step}: insert {k:?} diverged"));
                }
            }
            4 | 5 => {
                let k = key(&mut g);
                if h.get(&k) != model.get(&k).copied() {
                    return Err(format!("seed {seed} step {step}: get {k:?} diverged"));
                }
            }
            6 | 7 => {
                let k = key(&mut g);
                let v = g.u64();
                let expect = model.contains_key(&k);
                if expect {
                    model.insert(k.clone(), v);
                }
                if h.update(&k, v) != expect {
                    return Err(format!("seed {seed} step {step}: update {k:?} diverged"));
                }
            }
            8 => {
                let k = key(&mut g);
                let expect = model.remove(&k).is_some();
                if h.remove(&k) != expect {
                    return Err(format!("seed {seed} step {step}: remove {k:?} diverged"));
                }
            }
            _ => {
                let k = key(&mut g);
                let n = g.range(1..16);
                let expect: Vec<u64> = model.range(k.clone()..).take(n).map(|(_, v)| *v).collect();
                let mut got = Vec::new();
                h.scan(&k, n, &mut got);
                if got != expect {
                    return Err(format!("seed {seed} step {step}: scan {k:?} diverged"));
                }
            }
        }
        if h.len() != model.len() {
            return Err(format!(
                "seed {seed} step {step}: len {} != model {}",
                h.len(),
                model.len()
            ));
        }
        // Occasionally force a merge mid-stream; failure is acceptable,
        // divergence is not.
        if step % 257 == 256 {
            let _ = h.force_merge();
        }
    }
    // Faults off: the index must merge cleanly and still match the model.
    faults::disable();
    h.force_merge().map_err(|e| format!("seed {seed}: final merge failed clean: {e}"))?;
    for (k, v) in &model {
        if h.get(k) != Some(*v) {
            return Err(format!("seed {seed}: post-merge lost {k:?}"));
        }
    }
    Ok(())
}

#[test]
fn differential_under_injected_merge_faults_32_seeds() {
    let _guard = faults::test_lock();
    for seed in 0..32u64 {
        faults::enable(seed);
        for p in MERGE_POINTS {
            faults::arm(p, 0.35, None);
        }
        if let Err(msg) = run_differential(seed, 1500) {
            faults::disable();
            panic!("{msg}");
        }
    }
    faults::disable();
}

#[test]
fn failed_merge_leaves_index_intact() {
    let _guard = faults::test_lock();
    faults::disable();
    let mut h = HybridBTree::with_config(MergeTrigger::Manual, true);
    for i in 0..3000u64 {
        h.insert(&i.to_be_bytes(), i);
    }
    h.force_merge().unwrap();
    for i in 3000..4000u64 {
        h.insert(&i.to_be_bytes(), i);
    }
    let before: Vec<(Vec<u8>, u64)> = {
        let mut v = Vec::new();
        h.for_each_sorted(&mut |k, val| v.push((k.to_vec(), val)));
        v
    };
    let (dyn_before, stat_before) = (h.dynamic_len(), h.static_len());

    // Fail at every stage of the merge, including right before the swap.
    for point in MERGE_POINTS {
        faults::enable(77);
        faults::arm(point, 1.0, None);
        match h.force_merge() {
            Err(MemtreeError::Injected { point: p }) => assert_eq!(p, point),
            other => panic!("expected injected failure at {point}, got {other:?}"),
        }
        faults::disable();
        // Stage shape untouched, every key still readable, order intact.
        assert_eq!(h.dynamic_len(), dyn_before, "{point} disturbed the dynamic stage");
        assert_eq!(h.static_len(), stat_before, "{point} disturbed the static stage");
        let mut after = Vec::new();
        h.for_each_sorted(&mut |k, val| after.push((k.to_vec(), val)));
        assert_eq!(after, before, "{point} changed visible contents");
        for i in (0..4000u64).step_by(97) {
            assert_eq!(h.get(&i.to_be_bytes()), Some(i), "{point} lost key {i}");
        }
    }
    assert_eq!(h.merge_stats().failed_merges, MERGE_POINTS.len() as u64);

    // And with faults gone, the merge lands.
    h.force_merge().unwrap();
    assert_eq!(h.dynamic_len(), 0);
    assert_eq!(h.static_len(), 4000);
}

#[test]
fn merge_retry_recovers_from_transient_faults() {
    let _guard = faults::test_lock();
    faults::enable(5);
    faults::arm("hybrid.merge.prepare", 1.0, Some(2)); // fail twice, then heal
    let mut h = HybridBTree::with_config(MergeTrigger::Manual, false);
    for i in 0..500u64 {
        h.insert(&i.to_be_bytes(), i);
    }
    h.merge_with_retry(3).unwrap();
    let stats = h.merge_stats();
    assert_eq!(stats.merges, 1);
    assert_eq!(stats.failed_merges, 2);
    assert_eq!(stats.merge_retries, 2);
    assert_eq!(h.static_len(), 500);
    faults::disable();
}

#[test]
fn merge_retry_gives_up_after_budgeted_attempts() {
    let _guard = faults::test_lock();
    faults::enable(6);
    faults::arm("hybrid.merge.build", 1.0, None); // permanent failure
    let mut h = HybridBTree::with_config(MergeTrigger::Manual, false);
    for i in 0..500u64 {
        h.insert(&i.to_be_bytes(), i);
    }
    match h.merge_with_retry(3) {
        Err(MemtreeError::MergeFailed { attempts: 3 }) => {}
        other => panic!("expected MergeFailed after 3 attempts, got {other:?}"),
    }
    assert_eq!(h.merge_stats().failed_merges, 3);
    // Still fully readable and writable.
    for i in (0..500u64).step_by(13) {
        assert_eq!(h.get(&i.to_be_bytes()), Some(i));
    }
    assert!(h.insert(&9999u64.to_be_bytes(), 1));
    faults::disable();
}
