//! Microbenchmarks over the core operations: one group per headline
//! claim. (The per-table/figure harness is the `repro` binary; these give
//! quick single-operation numbers.)
//!
//! Plain `harness = false` binary with manual timing — the workspace
//! builds fully offline, so no external bench framework. Each benchmark
//! runs a batch several times and reports the best ns/op (min over runs
//! rejects scheduler noise better than the mean).

use memtree_btree::{BPlusTree, CompactBTree};
use memtree_common::traits::{OrderedIndex, PointFilter, StaticIndex};
use memtree_fst::{Fst, TrieOpts};
use memtree_hope::{Hope, Scheme};
use memtree_hybrid::HybridBTree;
use memtree_surf::{SuffixConfig, Surf};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;
use std::time::Instant;

const N_KEYS: usize = 200_000;
const RUNS: usize = 5;

fn int_entries() -> Vec<(Vec<u8>, u64)> {
    keys::sorted_unique(keys::rand_u64_keys(N_KEYS, 1))
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

fn picks(n: usize) -> Vec<usize> {
    let mut z = Zipfian::new(N_KEYS, 5);
    (0..n).map(|_| z.next_scrambled()).collect()
}

/// Times `f` (which performs `ops` operations and returns an accumulator
/// to defeat dead-code elimination) over several runs; prints best ns/op.
fn bench<T: std::fmt::Debug>(group: &str, name: &str, ops: usize, mut f: impl FnMut() -> T) {
    let mut best = f64::INFINITY;
    let mut sink = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        sink = Some(f());
        let ns = start.elapsed().as_nanos() as f64 / ops as f64;
        best = best.min(ns);
    }
    println!("{group:<14} {name:<18} {best:>10.1} ns/op   (sink {:?})", sink.unwrap());
}

fn bench_point_queries() {
    let entries = int_entries();
    let keyset: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
    let idx = picks(1 << 14);
    let ops = idx.len();

    let mut btree = BPlusTree::new();
    for (k, v) in &entries {
        btree.insert(k, *v);
    }
    bench("point_query", "btree", ops, || {
        idx.iter().map(|&i| btree.get(keyset[i]).unwrap()).sum::<u64>()
    });

    let compact = CompactBTree::build(&entries);
    bench("point_query", "compact_btree", ops, || {
        idx.iter().map(|&i| compact.get(keyset[i]).unwrap()).sum::<u64>()
    });

    let mut art = memtree_art::Art::new();
    for (k, v) in &entries {
        art.insert(k, *v);
    }
    bench("point_query", "art", ops, || {
        idx.iter().map(|&i| art.get(keyset[i]).unwrap()).sum::<u64>()
    });

    let fst = Fst::build(&entries);
    bench("point_query", "fst", ops, || {
        idx.iter().map(|&i| fst.get(keyset[i]).unwrap()).sum::<u64>()
    });

    let fst_baseline = Fst::build_with(&entries, TrieOpts::baseline());
    bench("point_query", "fst_unoptimized", ops, || {
        idx.iter()
            .map(|&i| fst_baseline.get(keyset[i]).unwrap())
            .sum::<u64>()
    });
}

fn bench_filters() {
    let entries = int_entries();
    let keyset: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
    let idx = picks(1 << 14);
    let ops = idx.len();

    let surf = Surf::from_keys(&keyset, SuffixConfig::Real(8));
    bench("filter_lookup", "surf_real8", ops, || {
        idx.iter()
            .map(|&i| usize::from(surf.may_contain(&keyset[i])))
            .sum::<usize>()
    });
    let bloom = memtree_filters::BloomFilter::from_keys(&keyset, 14.0);
    bench("filter_lookup", "bloom14", ops, || {
        idx.iter()
            .map(|&i| usize::from(bloom.may_contain(&keyset[i])))
            .sum::<usize>()
    });
}

fn bench_inserts() {
    let key_list = keys::rand_u64_keys(1 << 14, 3);
    let ops = key_list.len();
    bench("insert", "btree", ops, || {
        let mut t = BPlusTree::new();
        for (i, k) in key_list.iter().enumerate() {
            t.insert(k, i as u64);
        }
        t.len()
    });
    bench("insert", "hybrid_btree", ops, || {
        let mut t = HybridBTree::new();
        for (i, k) in key_list.iter().enumerate() {
            t.insert(k, i as u64);
        }
        t.len()
    });
}

fn bench_hope_encode() {
    let emails = keys::sorted_unique(keys::email_keys(50_000, 1));
    let sample: Vec<Vec<u8>> = emails.iter().step_by(100).cloned().collect();
    for scheme in [Scheme::SingleChar, Scheme::DoubleChar, Scheme::ThreeGrams] {
        let hope = Hope::train_keys(scheme, &sample, 1 << 16);
        bench("hope_encode", scheme.name(), emails.len(), || {
            emails.iter().map(|k| hope.encode_bytes(k).len()).sum::<usize>()
        });
    }
}

fn main() {
    bench_point_queries();
    bench_filters();
    bench_inserts();
    bench_hope_encode();
}
