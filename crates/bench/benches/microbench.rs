//! Criterion microbenchmarks over the core operations: one group per
//! headline claim. (The per-table/figure harness is the `repro` binary;
//! these benches give statistically robust single-operation numbers.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use memtree_btree::{BPlusTree, CompactBTree};
use memtree_common::traits::{OrderedIndex, PointFilter, StaticIndex};
use memtree_fst::{Fst, TrieOpts};
use memtree_hope::{Hope, Scheme};
use memtree_hybrid::HybridBTree;
use memtree_surf::{SuffixConfig, Surf};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;

const N_KEYS: usize = 200_000;

fn int_entries() -> Vec<(Vec<u8>, u64)> {
    keys::sorted_unique(keys::rand_u64_keys(N_KEYS, 1))
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

fn picks(n: usize) -> Vec<usize> {
    let mut z = Zipfian::new(N_KEYS, 5);
    (0..n).map(|_| z.next_scrambled()).collect()
}

fn bench_point_queries(c: &mut Criterion) {
    let entries = int_entries();
    let keyset: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
    let idx = picks(1 << 14);

    let mut group = c.benchmark_group("point_query");
    group.throughput(Throughput::Elements(idx.len() as u64));

    let mut btree = BPlusTree::new();
    for (k, v) in &entries {
        btree.insert(k, *v);
    }
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &idx {
                acc += btree.get(keyset[i]).unwrap();
            }
            acc
        })
    });

    let compact = CompactBTree::build(&entries);
    group.bench_function("compact_btree", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &idx {
                acc += compact.get(keyset[i]).unwrap();
            }
            acc
        })
    });

    let mut art = memtree_art::Art::new();
    for (k, v) in &entries {
        art.insert(k, *v);
    }
    group.bench_function("art", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &idx {
                acc += art.get(keyset[i]).unwrap();
            }
            acc
        })
    });

    let fst = Fst::build(&entries);
    group.bench_function("fst", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &idx {
                acc += fst.get(keyset[i]).unwrap();
            }
            acc
        })
    });

    let fst_baseline = Fst::build_with(&entries, TrieOpts::baseline());
    group.bench_function("fst_unoptimized", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &idx {
                acc += fst_baseline.get(keyset[i]).unwrap();
            }
            acc
        })
    });
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let entries = int_entries();
    let keyset: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
    let idx = picks(1 << 14);

    let mut group = c.benchmark_group("filter_lookup");
    group.throughput(Throughput::Elements(idx.len() as u64));
    let surf = Surf::from_keys(&keyset, SuffixConfig::Real(8));
    group.bench_function("surf_real8", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &i in &idx {
                acc += usize::from(surf.may_contain(&keyset[i]));
            }
            acc
        })
    });
    let bloom = memtree_filters::BloomFilter::from_keys(&keyset, 14.0);
    group.bench_function("bloom14", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &i in &idx {
                acc += usize::from(bloom.may_contain(&keyset[i]));
            }
            acc
        })
    });
    group.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let key_list = keys::rand_u64_keys(1 << 14, 3);
    let mut group = c.benchmark_group("insert");
    group.throughput(Throughput::Elements(key_list.len() as u64));
    group.bench_function("btree", |b| {
        b.iter_batched(
            BPlusTree::new,
            |mut t| {
                for (i, k) in key_list.iter().enumerate() {
                    t.insert(k, i as u64);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("hybrid_btree", |b| {
        b.iter_batched(
            HybridBTree::new,
            |mut t| {
                for (i, k) in key_list.iter().enumerate() {
                    t.insert(k, i as u64);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_hope_encode(c: &mut Criterion) {
    let emails = keys::sorted_unique(keys::email_keys(50_000, 1));
    let sample: Vec<Vec<u8>> = emails.iter().step_by(100).cloned().collect();
    let mut group = c.benchmark_group("hope_encode");
    group.throughput(Throughput::Elements(emails.len() as u64));
    for scheme in [Scheme::SingleChar, Scheme::DoubleChar, Scheme::ThreeGrams] {
        let hope = Hope::train_keys(scheme, &sample, 1 << 16);
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for k in &emails {
                    acc += hope.encode_bytes(k).len();
                }
                acc
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_point_queries, bench_filters, bench_inserts, bench_hope_encode
}
criterion_main!(benches);
