//! Chapter 1/2 experiments: index memory share, query profiling, and the
//! Dynamic-to-Static rule evaluation.

use crate::{header, mb, mops, time, Scale};
use memtree_btree::{BPlusTree, CompactBTree, CompressedBTree};
use memtree_common::traits::{OrderedIndex, StaticIndex};
use memtree_hstore::db::IndexChoice;
use memtree_hstore::tpcc::{Tpcc, TpccConfig};
use memtree_hstore::{articles::Articles, voter::Voter, Database};
use memtree_masstree::{CompactMasstree, Masstree};
use memtree_skiplist::{CompactSkipList, SkipList};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;

/// The three key types of the thesis microbenchmarks.
pub fn key_sets(scale: Scale) -> Vec<(&'static str, Vec<Vec<u8>>)> {
    vec![
        ("rand-int", keys::rand_u64_keys(scale.n_keys, 7)),
        ("mono-int", keys::mono_u64_keys(scale.n_keys)),
        ("email", keys::email_keys(scale.n_keys, 7)),
    ]
}

/// Zipf-scrambled read benchmark over a loaded key set.
pub fn read_tput<F: Fn(&[u8]) -> bool>(keyset: &[Vec<u8>], n_ops: usize, get: F) -> f64 {
    let mut z = Zipfian::new(keyset.len(), 99);
    let picks: Vec<usize> = (0..n_ops).map(|_| z.next_scrambled()).collect();
    let mut hits = 0usize;
    let d = time(|| {
        for &i in &picks {
            if get(&keyset[i]) {
                hits += 1;
            }
        }
    });
    assert_eq!(hits, n_ops, "read benchmark lost keys");
    mops(n_ops, d)
}

/// Table 1.1: percentage of H-Store memory in tuples vs indexes.
pub fn table1_1(scale: Scale) {
    header("table1_1", "index memory share in H-Store (B+tree indexes)");
    println!(
        "{:<10} {:>10} {:>16} {:>18}",
        "workload", "tuples%", "primary-idx%", "secondary-idx%"
    );
    let txns = scale.n_ops / 2;

    let mut db = Database::new(IndexChoice::BTree);
    let mut tpcc = Tpcc::load(&mut db, TpccConfig::small(), 1);
    for _ in 0..txns {
        tpcc.run_one(&mut db).expect("txn");
    }
    print_share("TPC-C", &db);

    let mut db = Database::new(IndexChoice::BTree);
    let mut voter = Voter::load(&mut db, 6, 2);
    for _ in 0..txns * 2 {
        voter.run_one(&mut db).expect("txn");
    }
    print_share("Voter", &db);

    let mut db = Database::new(IndexChoice::BTree);
    let mut art = Articles::load(&mut db, (scale.n_keys / 20) as i64, (scale.n_keys / 50) as i64, 3);
    for _ in 0..txns {
        art.run_one(&mut db).expect("txn");
    }
    print_share("Articles", &db);
    println!("(paper: TPC-C 42.5/33.5/24.0, Voter 45.1/54.9/0, Articles 64.8/22.6/12.6)");
}

fn print_share(name: &str, db: &Database) {
    let s = db.stats();
    let total = s.total() as f64;
    println!(
        "{:<10} {:>9.1}% {:>15.1}% {:>17.1}%",
        name,
        100.0 * s.tuple_bytes as f64 / total,
        100.0 * s.primary_index_bytes as f64 / total,
        100.0 * s.secondary_index_bytes as f64 / total
    );
}

/// Table 2.2: software profiling counters for point queries (stand-in for
/// PAPI hardware counters; see DESIGN.md substitution #5).
pub fn table2_2(scale: Scale) {
    header(
        "table2_2",
        "per-query software probes, random u64 point queries",
    );
    let keyset = keys::rand_u64_keys(scale.n_keys, 5);
    let mut z = Zipfian::new(keyset.len(), 11);
    let picks: Vec<usize> = (0..scale.n_ops.min(200_000)).map(|_| z.next_scrambled()).collect();

    let mut btree = BPlusTree::new();
    let mut mass = Masstree::new();
    let mut skip = SkipList::new();
    let mut art = memtree_art::Art::new();
    for (i, k) in keyset.iter().enumerate() {
        btree.insert(k, i as u64);
        mass.insert(k, i as u64);
        skip.insert(k, i as u64);
        art.insert(k, i as u64);
    }
    println!(
        "{:<10} {:>14} {:>18} {:>16}",
        "tree", "nodes/query", "key-bytes/query", "derefs/query"
    );
    let show = |name: &str, f: &dyn Fn(&[u8]) -> memtree_common::probe::ProbeStats| {
        let mut total = memtree_common::probe::ProbeStats::default();
        for &i in &picks {
            total.add(&f(&keyset[i]));
        }
        let n = picks.len() as f64;
        println!(
            "{:<10} {:>14.2} {:>18.2} {:>16.2}",
            name,
            total.nodes_visited as f64 / n,
            total.key_bytes_compared as f64 / n,
            total.pointer_derefs as f64 / n
        );
    };
    show("B+tree", &|k| btree.get_profiled(k).1);
    show("Masstree", &|k| mass.get_profiled(k).1);
    show("SkipList", &|k| skip.get_profiled(k).1);
    show("ART", &|k| art.get_profiled(k).1);
    println!("(paper: ART needs ~2.3x fewer instructions and ~5x fewer L1 misses)");
}

/// Figure 2.5: read throughput and memory for original vs Compact (vs
/// Compressed for B+tree) across the three key types.
pub fn fig2_5(scale: Scale) {
    header("fig2_5", "D-to-S rules: read throughput (Mops) and memory (MB)");
    println!(
        "{:<10} {:<12} {:>12} {:>10} | {:>12} {:>10} {:>8}",
        "keys", "tree", "orig Mops", "orig MB", "compact Mops", "cmp MB", "saved"
    );
    for (kname, keyset) in key_sets(scale) {
        let entries: Vec<(Vec<u8>, u64)> = {
            let mut s = keyset.clone();
            s.sort();
            s.dedup();
            s.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect()
        };
        macro_rules! run_pair {
            ($name:expr, $dyn_ty:ty, $static_ty:ty) => {{
                let mut d: $dyn_ty = Default::default();
                for k in &keyset {
                    d.insert(k, 1);
                }
                let d_tput = read_tput(&keyset, scale.n_ops, |k| d.get(k).is_some());
                let d_mem = d.mem_usage();
                let c = <$static_ty>::build(&entries);
                let c_tput = read_tput(&keyset, scale.n_ops, |k| c.get(k).is_some());
                let c_mem = c.mem_usage();
                println!(
                    "{:<10} {:<12} {:>12.2} {:>10.1} | {:>12.2} {:>10.1} {:>7.0}%",
                    $name.0,
                    $name.1,
                    d_tput,
                    mb(d_mem),
                    c_tput,
                    mb(c_mem),
                    100.0 * (1.0 - c_mem as f64 / d_mem as f64)
                );
            }};
        }
        run_pair!((kname, "B+tree"), BPlusTree, CompactBTree);
        run_pair!((kname, "Masstree"), Masstree, CompactMasstree);
        run_pair!((kname, "SkipList"), SkipList, CompactSkipList);
        run_pair!((kname, "ART"), memtree_art::Art, memtree_art::CompactArt);
        // Compression rule on the B+tree only (as in the thesis).
        let comp = CompressedBTree::build(&entries);
        let comp_tput = read_tput(&keyset, scale.n_ops, |k| comp.get(k).is_some());
        println!(
            "{:<10} {:<12} {:>12} {:>10} | {:>12.2} {:>10.1}",
            kname,
            "Compr-B+",
            "-",
            "-",
            comp_tput,
            mb(comp.mem_usage())
        );
    }
    println!("(paper: compact trees save 30-71% memory at similar or better read speed;");
    println!(" block compression saves more but cuts throughput 18-34%)");
}
