//! Chapter 6 experiments: HOPE microbenchmarks and search-tree
//! integration.

use crate::{header, mb, ns_per_op, time, Scale};
use memtree_btree::{BPlusTree, PrefixBTree};
use memtree_common::traits::OrderedIndex;
use memtree_hope::{Hope, HopeIndex, Scheme};
use memtree_patricia::CritBitTrie;
use memtree_common::traits::PointFilter;
use memtree_surf::{SuffixConfig, Surf};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;

fn datasets(scale: Scale) -> Vec<(&'static str, Vec<Vec<u8>>)> {
    vec![
        ("email", keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 1))),
        ("wiki", keys::sorted_unique(keys::wiki_keys(scale.n_keys / 2, 2))),
        ("url", keys::sorted_unique(keys::url_keys(scale.n_keys / 2, 3))),
    ]
}

fn sample_of(keyset: &[Vec<u8>], frac_inv: usize) -> Vec<Vec<u8>> {
    keyset.iter().step_by(frac_inv.max(1)).cloned().collect()
}

fn dict_limit(scheme: Scheme) -> usize {
    match scheme {
        Scheme::SingleChar => 256,
        _ => 1 << 16,
    }
}

/// Figure 6.8: compression rate vs sample size.
pub fn fig6_8(scale: Scale) {
    header("fig6_8", "CPR vs sample size (dict limit 2^16)");
    let keyset = keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 1));
    let refs: Vec<&[u8]> = keyset.iter().map(|k| k.as_slice()).collect();
    print!("{:<14}", "scheme");
    let fracs = [1000usize, 100, 10, 1];
    for f in fracs {
        print!(" {:>12}", format!("1/{f} sample"));
    }
    println!();
    for scheme in Scheme::all() {
        print!("{:<14}", scheme.name());
        for frac in fracs {
            let sample = sample_of(&keyset, frac);
            let hope = Hope::train_keys(scheme, &sample, dict_limit(scheme));
            print!(" {:>12.2}", hope.cpr(&refs));
        }
        println!();
    }
    println!("(paper: CPR is insensitive to sample size — 1% samples suffice)");
}

/// Figures 6.9–6.11 share one sweep.
fn micro(scale: Scale) -> Vec<(Scheme, &'static str, f64, f64, usize)> {
    let mut rows = Vec::new();
    for (dname, keyset) in datasets(scale) {
        let sample = sample_of(&keyset, 100);
        let refs: Vec<&[u8]> = keyset.iter().map(|k| k.as_slice()).collect();
        for scheme in Scheme::all() {
            let hope = Hope::train_keys(scheme, &sample, dict_limit(scheme));
            let cpr = hope.cpr(&refs);
            let mut sink = 0usize;
            let d = time(|| {
                for k in &refs {
                    sink += hope.encode_bytes(k).len();
                }
            });
            std::hint::black_box(sink);
            rows.push((scheme, dname, cpr, ns_per_op(refs.len(), d), hope.dict_mem()));
        }
    }
    rows
}

/// Figure 6.9: compression rates.
pub fn fig6_9(scale: Scale) {
    header("fig6_9", "HOPE compression rate (CPR) by scheme and dataset");
    println!("{:<14} {:>8} {:>8} {:>8}", "scheme", "email", "wiki", "url");
    print_by_scheme(micro(scale), |r| format!("{:>8.2}", r.2));
    println!("(paper: Double-Char ~1.4-1.8x; 4-Grams/ALM-Improved best, ~2-3x on urls)");
}

/// Figure 6.10: encode latency.
pub fn fig6_10(scale: Scale) {
    header("fig6_10", "HOPE encode latency (ns per key)");
    println!("{:<14} {:>8} {:>8} {:>8}", "scheme", "email", "wiki", "url");
    print_by_scheme(micro(scale), |r| format!("{:>8.0}", r.3));
    println!("(paper: char schemes are fastest; gram/ALM schemes pay dictionary search)");
}

/// Figure 6.11: dictionary memory.
pub fn fig6_11(scale: Scale) {
    header("fig6_11", "HOPE dictionary memory (KB)");
    println!("{:<14} {:>8} {:>8} {:>8}", "scheme", "email", "wiki", "url");
    print_by_scheme(micro(scale), |r| format!("{:>8.0}", r.4 as f64 / 1e3));
    println!("(paper: dictionaries are small — KBs to ~1MB at the 2^16 limit)");
}

fn print_by_scheme(
    rows: Vec<(Scheme, &'static str, f64, f64, usize)>,
    fmt: impl Fn(&(Scheme, &'static str, f64, f64, usize)) -> String,
) {
    for scheme in Scheme::all() {
        print!("{:<14}", scheme.name());
        for dname in ["email", "wiki", "url"] {
            let row = rows
                .iter()
                .find(|r| r.0 == scheme && r.1 == dname)
                .expect("row");
            print!(" {}", fmt(row));
        }
        println!();
    }
}

/// Figure 6.12: dictionary build-time breakdown.
pub fn fig6_12(scale: Scale) {
    header("fig6_12", "dictionary build time breakdown (1% email sample)");
    let keyset = keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 1));
    let sample = sample_of(&keyset, 100);
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "count ms", "select ms", "codes ms", "build ms", "total ms"
    );
    for scheme in Scheme::all() {
        let hope = Hope::train_keys(scheme, &sample, dict_limit(scheme));
        let b = hope.breakdown();
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            scheme.name(),
            b.count.as_secs_f64() * 1e3,
            b.select.as_secs_f64() * 1e3,
            b.assign_codes.as_secs_f64() * 1e3,
            b.build_dict.as_secs_f64() * 1e3,
            b.total().as_secs_f64() * 1e3
        );
    }
    println!("(paper: symbol counting/selection dominates for gram and ALM schemes)");
}

/// Figure 6.13: batch encoding on pre-sorted keys.
pub fn fig6_13(scale: Scale) {
    header("fig6_13", "batch encoding latency vs batch size (sorted email keys)");
    let keyset = keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 1));
    let sample = sample_of(&keyset, 100);
    println!("{:<14} {:>10} {:>10} {:>10} {:>10}", "scheme", "single", "b=32", "b=1024", "all");
    for scheme in [Scheme::ThreeGrams, Scheme::FourGrams, Scheme::DoubleChar] {
        let hope = Hope::train_keys(scheme, &sample, 1 << 16);
        print!("{:<14}", scheme.name());
        for batch in [1usize, 32, 1024, usize::MAX] {
            let mut enc = hope.batch_encoder();
            let mut sink = 0usize;
            let d = time(|| {
                for (i, k) in keyset.iter().enumerate() {
                    if batch != usize::MAX && i % batch == 0 {
                        enc.reset();
                    }
                    sink += enc.encode(k).0.len();
                }
            });
            std::hint::black_box(sink);
            print!(" {:>10.0}", ns_per_op(keyset.len(), d));
        }
        println!();
    }
    println!("(paper: shared prefixes let batch encoding cut per-key latency on sorted runs)");
}

/// Figure 6.14: key-distribution change.
pub fn fig6_14(scale: Scale) {
    header("fig6_14", "CPR under stable vs suddenly-changed key distribution");
    let emails = keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 1));
    let urls = keys::sorted_unique(keys::url_keys(scale.n_keys / 2, 3));
    let email_refs: Vec<&[u8]> = emails.iter().map(|k| k.as_slice()).collect();
    let url_refs: Vec<&[u8]> = urls.iter().map(|k| k.as_slice()).collect();
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "scheme", "stable CPR", "after-shift CPR", "retrained CPR"
    );
    for scheme in [Scheme::DoubleChar, Scheme::ThreeGrams, Scheme::AlmImproved] {
        let trained_on_email = Hope::train_keys(scheme, &sample_of(&emails, 100), dict_limit(scheme));
        let stable = trained_on_email.cpr(&email_refs);
        let shifted = trained_on_email.cpr(&url_refs);
        let retrained = Hope::train_keys(scheme, &sample_of(&urls, 100), dict_limit(scheme)).cpr(&url_refs);
        println!(
            "{:<14} {:>14.2} {:>16.2} {:>14.2}",
            scheme.name(),
            stable,
            shifted,
            retrained
        );
    }
    println!("(paper: sudden pattern changes degrade CPR but never correctness — order is");
    println!(" preserved for any input; rebuilding the dictionary restores the rate)");
}

fn ycsb_c_latency<I>(keyset: &[Vec<u8>], n_ops: usize, index: &I, get: impl Fn(&I, &[u8]) -> bool) -> f64 {
    let mut z = Zipfian::new(keyset.len(), 7);
    let picks: Vec<usize> = (0..n_ops).map(|_| z.next_scrambled()).collect();
    let mut acc = 0usize;
    let d = time(|| {
        for &i in &picks {
            acc += usize::from(get(index, &keyset[i]));
        }
    });
    std::hint::black_box(acc);
    ns_per_op(n_ops, d)
}

/// Figures 6.15: HOPE-optimized SuRF runtime.
pub fn fig6_15(scale: Scale) {
    header("fig6_15", "SuRF point-query latency: raw keys vs HOPE(Double-Char)");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "raw ns/op", "hope ns/op", "raw MB", "hope MB"
    );
    for (dname, keyset) in datasets(scale) {
        let raw = Surf::from_keys(&keyset, SuffixConfig::Real(8));
        let hope = Hope::train_keys(Scheme::DoubleChar, &sample_of(&keyset, 100), 1 << 16);
        let encoded: Vec<Vec<u8>> = {
            let mut enc = hope.batch_encoder();
            keyset.iter().map(|k| enc.encode(k).0).collect()
        };
        let hsurf = Surf::from_keys(&encoded, SuffixConfig::Real(8));
        let raw_ns = ycsb_c_latency(&keyset, scale.n_ops, &raw, |s, k| s.may_contain(k));
        // HOPE query path: encode the query, then probe.
        let mut z = Zipfian::new(keyset.len(), 7);
        let picks: Vec<usize> = (0..scale.n_ops).map(|_| z.next_scrambled()).collect();
        let mut acc = 0usize;
        let d = time(|| {
            for &i in &picks {
                let q = hope.encode_bytes(&keyset[i]);
                acc += usize::from(hsurf.may_contain(&q));
            }
        });
        std::hint::black_box(acc);
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>12.2} {:>12.2}",
            dname,
            raw_ns,
            ns_per_op(picks.len(), d),
            mb(raw.size_bytes()),
            mb(hsurf.size_bytes())
        );
    }
    println!("(paper: shorter encoded keys shrink the trie and speed queries up to 40%)");
}

/// Figure 6.16: SuRF trie height with and without HOPE.
pub fn fig6_16(scale: Scale) {
    header("fig6_16", "SuRF trie height (average leaf depth proxy: trie height)");
    println!("{:<8} {:>10} {:>12}", "dataset", "raw", "hope(DC)");
    for (dname, keyset) in datasets(scale) {
        let raw = Surf::from_keys(&keyset, SuffixConfig::None);
        let hope = Hope::train_keys(Scheme::DoubleChar, &sample_of(&keyset, 100), 1 << 16);
        let encoded: Vec<Vec<u8>> = {
            let mut enc = hope.batch_encoder();
            keyset.iter().map(|k| enc.encode(k).0).collect()
        };
        let hsurf = Surf::from_keys(&encoded, SuffixConfig::None);
        println!(
            "{:<8} {:>10} {:>12}",
            dname,
            raw.trie().height(),
            hsurf.trie().height()
        );
    }
    println!("(paper: compressed keys cut trie height by roughly the compression rate)");
}

/// Figure 6.17: SuRF FPR with and without HOPE (email keys).
pub fn fig6_17(scale: Scale) {
    header("fig6_17", "SuRF-Real8 FPR on emails: raw vs HOPE-encoded");
    let all = keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 1));
    let members: Vec<Vec<u8>> = all.iter().step_by(2).cloned().collect();
    let hope = Hope::train_keys(Scheme::DoubleChar, &sample_of(&members, 100), 1 << 16);
    let encoded_members: Vec<Vec<u8>> = {
        let mut enc = hope.batch_encoder();
        members.iter().map(|k| enc.encode(k).0).collect()
    };
    let raw = Surf::from_keys(&members, SuffixConfig::Real(8));
    let hsurf = Surf::from_keys(&encoded_members, SuffixConfig::Real(8));
    let mut fp_raw = 0usize;
    let mut fp_hope = 0usize;
    let mut neg = 0usize;
    for q in all.iter().skip(1).step_by(2) {
        neg += 1;
        if raw.may_contain(q) {
            fp_raw += 1;
        }
        if hsurf.may_contain(&hope.encode_bytes(q)) {
            fp_hope += 1;
        }
    }
    println!("raw SuRF-Real8   FPR: {:.3}%", 100.0 * fp_raw as f64 / neg as f64);
    println!("HOPE SuRF-Real8  FPR: {:.3}%", 100.0 * fp_hope as f64 / neg as f64);
    println!("(paper: HOPE densifies suffix bits — equal or better FPR at the same size)");
}

fn tree_with_hope<I: OrderedIndex>(
    id: &str,
    title: &str,
    scale: Scale,
    make: impl Fn() -> I,
) {
    header(id, title);
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "dataset", "raw ns/op", "hope ns/op", "raw MB", "tree MB", "dict MB"
    );
    for (dname, keyset) in datasets(scale) {
        let mut plain = make();
        for (i, k) in keyset.iter().enumerate() {
            plain.insert(k, i as u64);
        }
        let hope = Hope::train_keys(Scheme::DoubleChar, &sample_of(&keyset, 100), 1 << 16);
        let mut wrapped = HopeIndex::new(make(), hope);
        for (i, k) in keyset.iter().enumerate() {
            wrapped.insert(k, i as u64);
        }
        let raw_ns = ycsb_c_latency(&keyset, scale.n_ops, &plain, |t, k| t.get(k).is_some());
        let hope_ns = ycsb_c_latency(&keyset, scale.n_ops, &wrapped, |t, k| t.get(k).is_some());
        let dict = wrapped.hope().dict_mem();
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>9.1} {:>9.1} {:>9.1}",
            dname,
            raw_ns,
            hope_ns,
            mb(plain.mem_usage()),
            mb(wrapped.mem_usage() - dict),
            mb(dict)
        );
    }
    println!("(the Double-Char dictionary is a fixed ~1 MB: it amortizes at the paper's");
    println!(" 50M-key scale; the tree-MB column is the per-key effect)");
}

/// Figure 6.18: HOPE + ART.
pub fn fig6_18(scale: Scale) {
    tree_with_hope("fig6_18", "ART with HOPE (YCSB-C, Double-Char)", scale, memtree_art::Art::new);
    println!("(paper: shorter keys shrink the radix tree and speed lookups)");
}

/// Figure 6.19: HOPE + HOT (crit-bit stand-in, see DESIGN.md).
pub fn fig6_19(scale: Scale) {
    tree_with_hope(
        "fig6_19",
        "HOT stand-in (crit-bit trie) with HOPE",
        scale,
        CritBitTrie::new,
    );
    println!("(paper: HOT stores only partial keys, so HOPE's memory benefit is smaller)");
}

/// Figure 6.20: HOPE + B+tree.
pub fn fig6_20(scale: Scale) {
    tree_with_hope("fig6_20", "B+tree with HOPE", scale, BPlusTree::new);
    println!("(paper: full-key stores benefit most in memory; latency gains modest)");
}

/// Figure 6.21: HOPE + Prefix B+tree.
pub fn fig6_21(scale: Scale) {
    tree_with_hope("fig6_21", "Prefix B+tree with HOPE", scale, PrefixBTree::new);
    println!("(paper: prefix truncation already removes redundancy, so HOPE adds less)");
}
