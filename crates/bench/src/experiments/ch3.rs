//! Chapter 3 experiments: FST vs pointer trees, vs other succinct tries,
//! optimization ablation, and the Dense/Sparse R-sweep.

use crate::{header, mb, ns_per_op, time, Scale};
use memtree_art::{Art, CompactArt};
use memtree_btree::BPlusTree;
use memtree_common::traits::{OrderedIndex, StaticIndex};
use memtree_fst::{Fst, PdtLite, TrieOpts, TxTrie};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;

fn entries_of(keyset: &[Vec<u8>]) -> Vec<(Vec<u8>, u64)> {
    let mut s = keyset.to_vec();
    s.sort();
    s.dedup();
    s.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect()
}

fn point_ns<F: Fn(&[u8]) -> bool>(keyset: &[Vec<u8>], n_ops: usize, get: F) -> f64 {
    let mut z = Zipfian::new(keyset.len(), 3);
    let picks: Vec<usize> = (0..n_ops).map(|_| z.next_scrambled()).collect();
    let mut hits = 0usize;
    let d = time(|| {
        for &i in &picks {
            if get(&keyset[i]) {
                hits += 1;
            }
        }
    });
    assert_eq!(hits, n_ops);
    ns_per_op(n_ops, d)
}

fn range_ns<F: Fn(&[u8], usize) -> usize>(keyset: &[Vec<u8>], n_ops: usize, scan: F) -> f64 {
    let mut z = Zipfian::new(keyset.len(), 5);
    let picks: Vec<usize> = (0..n_ops).map(|_| z.next_scrambled()).collect();
    let mut got = 0usize;
    let d = time(|| {
        for &i in &picks {
            got += scan(&keyset[i], 50);
        }
    });
    assert!(got > 0);
    ns_per_op(n_ops, d)
}

/// Figure 3.4: FST vs B+tree / ART / C-ART on point + range queries.
pub fn fig3_4(scale: Scale) {
    header("fig3_4", "FST vs pointer-based indexes");
    println!(
        "{:<10} {:<8} {:>12} {:>12} {:>10}",
        "keys", "index", "point ns/op", "range ns/op", "MB"
    );
    for (kname, keyset) in [
        ("rand-int", keys::rand_u64_keys(scale.n_keys, 1)),
        ("email", keys::email_keys(scale.n_keys / 2, 2)),
    ] {
        let entries = entries_of(&keyset);

        if kname == "rand-int" {
            let mut bt = BPlusTree::new();
            for (k, v) in &entries {
                bt.insert(k, *v);
            }
            let p = point_ns(&keyset, scale.n_ops, |k| bt.get(k).is_some());
            let r = range_ns(&keyset, scale.n_ops / 10, |k, n| {
                let mut out = Vec::new();
                bt.scan(k, n, &mut out)
            });
            println!("{:<10} {:<8} {:>12.0} {:>12.0} {:>10.1}", kname, "B+tree", p, r, mb(bt.mem_usage()));
        }

        let mut art = Art::new();
        for (k, v) in &entries {
            art.insert(k, *v);
        }
        let p = point_ns(&keyset, scale.n_ops, |k| art.get(k).is_some());
        let r = range_ns(&keyset, scale.n_ops / 10, |k, n| {
            let mut out = Vec::new();
            art.scan(k, n, &mut out)
        });
        println!("{:<10} {:<8} {:>12.0} {:>12.0} {:>10.1}", kname, "ART", p, r, mb(art.mem_usage()));

        let cart = CompactArt::build(&entries);
        let p = point_ns(&keyset, scale.n_ops, |k| cart.get(k).is_some());
        let r = range_ns(&keyset, scale.n_ops / 10, |k, n| {
            let mut out = Vec::new();
            cart.scan(k, n, &mut out)
        });
        println!("{:<10} {:<8} {:>12.0} {:>12.0} {:>10.1}", kname, "C-ART", p, r, mb(cart.mem_usage()));

        let fst = Fst::build(&entries);
        let p = point_ns(&keyset, scale.n_ops, |k| fst.get(k).is_some());
        let r = range_ns(&keyset, scale.n_ops / 10, |k, n| {
            let mut out = Vec::new();
            fst.scan(k, n, &mut out)
        });
        println!("{:<10} {:<8} {:>12.0} {:>12.0} {:>10.1}", kname, "FST", p, r, mb(fst.mem_usage()));
    }
    println!("(paper: FST matches ART speed at a fraction of the memory — lowest P*S cost)");
}

/// Figure 3.5: FST vs TxTrie (plain LOUDS-Sparse) vs PDT-style baseline.
pub fn fig3_5(scale: Scale) {
    header("fig3_5", "FST vs other succinct tries (complete keys, point queries)");
    println!(
        "{:<10} {:<8} {:>12} {:>10} {:>10}",
        "keys", "trie", "point ns/op", "MB", "speedup"
    );
    for (kname, keyset) in [
        ("rand-int", keys::rand_u64_keys(scale.n_keys, 1)),
        ("email", keys::email_keys(scale.n_keys / 2, 2)),
    ] {
        let entries = entries_of(&keyset);
        let fst = Fst::build(&entries);
        let tx = TxTrie::build(&entries);
        let pdt = PdtLite::build(&entries);
        let f = point_ns(&keyset, scale.n_ops, |k| fst.get(k).is_some());
        let t = point_ns(&keyset, scale.n_ops, |k| tx.get(k).is_some());
        let p = point_ns(&keyset, scale.n_ops, |k| pdt.get(k).is_some());
        println!("{:<10} {:<8} {:>12.0} {:>10.1} {:>10}", kname, "FST", f, mb(fst.mem_usage()), "1.0x");
        println!("{:<10} {:<8} {:>12.0} {:>10.1} {:>9.1}x", kname, "tx-trie", t, mb(tx.mem_usage()), t / f);
        println!("{:<10} {:<8} {:>12.0} {:>10.1} {:>9.1}x", kname, "PDT", p, mb(pdt.mem_usage()), p / f);
    }
    println!("(paper: FST is 6-15x faster than tx-trie, 4-8x faster than PDT, and smaller;");
    println!(" the PDT gap shrinks on emails thanks to path decomposition)");
}

/// Figure 3.6: cumulative optimization breakdown.
pub fn fig3_6(scale: Scale) {
    header("fig3_6", "FST performance breakdown (cumulative optimizations)");
    let steps: Vec<(&str, TrieOpts)> = vec![
        ("baseline (sparse+poppy)", TrieOpts::baseline()),
        (
            "+LOUDS-Dense",
            TrieOpts {
                r_ratio: Some(64),
                ..TrieOpts::baseline()
            },
        ),
        (
            "+rank-opt",
            TrieOpts {
                r_ratio: Some(64),
                rank_opt: true,
                ..TrieOpts::baseline()
            },
        ),
        (
            "+select-opt",
            TrieOpts {
                r_ratio: Some(64),
                rank_opt: true,
                select_opt: true,
                ..TrieOpts::baseline()
            },
        ),
        (
            "+SIMD-search (SWAR)",
            TrieOpts {
                prefetch: false,
                ..TrieOpts::default()
            },
        ),
        ("+prefetching", TrieOpts::default()),
    ];
    println!("{:<26} {:>14} {:>14}", "configuration", "int ns/op", "email ns/op");
    let ints = keys::rand_u64_keys(scale.n_keys, 1);
    let emails = keys::email_keys(scale.n_keys / 2, 2);
    let int_entries = entries_of(&ints);
    let email_entries = entries_of(&emails);
    for (name, opts) in steps {
        let fi = Fst::build_with(&int_entries, opts);
        let fe = Fst::build_with(&email_entries, opts);
        let pi = point_ns(&ints, scale.n_ops, |k| fi.get(k).is_some());
        let pe = point_ns(&emails, scale.n_ops, |k| fe.get(k).is_some());
        println!("{:<26} {:>14.0} {:>14.0}", name, pi, pe);
    }
    println!("(prefetch is a real _mm_prefetch on x86_64, a no-op elsewhere)");
}

/// Figure 3.7: performance/memory as LOUDS-Dense levels grow (R sweep).
pub fn fig3_7(scale: Scale) {
    header("fig3_7", "Dense/Sparse trade-off: sweep of size ratio R");
    println!(
        "{:<12} {:>14} {:>10} {:>14} {:>10}",
        "R", "int ns/op", "int MB", "email ns/op", "email MB"
    );
    let ints = keys::rand_u64_keys(scale.n_keys, 1);
    let emails = keys::email_keys(scale.n_keys / 2, 2);
    let int_entries = entries_of(&ints);
    let email_entries = entries_of(&emails);
    let sweep: Vec<(String, Option<usize>)> = vec![
        ("sparse-only".into(), None),
        ("1024".into(), Some(1024)),
        ("256".into(), Some(256)),
        ("64 (default)".into(), Some(64)),
        ("16".into(), Some(16)),
        ("4".into(), Some(4)),
        ("1".into(), Some(1)),
        ("all-dense".into(), Some(0)),
    ];
    for (label, r) in sweep {
        let opts = TrieOpts {
            r_ratio: r,
            ..TrieOpts::default()
        };
        let fi = Fst::build_with(&int_entries, opts);
        let fe = Fst::build_with(&email_entries, opts);
        let pi = point_ns(&ints, scale.n_ops, |k| fi.get(k).is_some());
        let pe = point_ns(&emails, scale.n_ops, |k| fe.get(k).is_some());
        println!(
            "{:<12} {:>14.0} {:>10.1} {:>14.0} {:>10.1}",
            label,
            pi,
            mb(fi.mem_usage()),
            pe,
            mb(fe.mem_usage())
        );
    }
    println!("(paper: more dense levels -> up to 3x faster; memory grows for emails but");
    println!(" *shrinks* for random ints, whose top-level fanouts exceed 51)");
}
