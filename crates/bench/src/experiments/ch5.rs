//! Chapter 5 experiments: hybrid indexes vs originals, merge behaviour,
//! and the full-DBMS (mini H-Store) evaluation.

use crate::{header, mb, mops, time, Scale};
use memtree_art::Art;
use memtree_btree::BPlusTree;
use memtree_common::traits::OrderedIndex;
use memtree_hstore::db::IndexChoice;
use memtree_hstore::tpcc::{Tpcc, TpccConfig};
use memtree_hstore::{articles::Articles, voter::Voter, Database};
use memtree_hybrid::{
    DualStage, HybridArt, HybridBTree, HybridCompressedBTree, HybridMasstree, HybridSkipList,
    MergeStrategy, MergeTrigger, SecondaryIndex,
};
use memtree_masstree::Masstree;
use memtree_skiplist::SkipList;
use memtree_workload::keys;
use memtree_workload::ycsb::{Mix, Op, OpGenerator};
use std::time::Duration;

/// Runs the four YCSB workloads against one index; returns per-workload
/// (Mops, MB-at-end).
fn ycsb_suite<I: OrderedIndex>(make: impl Fn() -> I, keyset: &[Vec<u8>], n_ops: usize) -> Vec<(Mix, f64, f64)> {
    let mut out = Vec::new();
    // Reserve keys for inserts in E and the load phase.
    let (load_keys, reserve) = keyset.split_at(keyset.len() * 3 / 4);
    for mix in Mix::all() {
        let mut index = make();
        let d_load = time(|| {
            for (i, k) in load_keys.iter().enumerate() {
                index.insert(k, i as u64);
            }
        });
        if mix == Mix::InsertOnly {
            out.push((mix, mops(load_keys.len(), d_load), mb(index.mem_usage())));
            continue;
        }
        let mut gen = OpGenerator::new(mix, load_keys.len(), 17);
        let ops: Vec<Op> = (0..n_ops).map(|_| gen.next()).collect();
        let mut scan_buf = Vec::with_capacity(128);
        let mut acc = 0usize;
        let d = time(|| {
            for op in &ops {
                match op {
                    Op::Read(i) => acc += usize::from(index.get(&load_keys[*i]).is_some()),
                    Op::Update(i) => acc += usize::from(index.update(&load_keys[*i], 9)),
                    Op::Insert(i) => {
                        acc += usize::from(index.insert(&reserve[*i % reserve.len()], 1))
                    }
                    Op::Scan(i, n) => {
                        scan_buf.clear();
                        acc += index.scan(&load_keys[*i], *n, &mut scan_buf);
                    }
                }
            }
        });
        std::hint::black_box(acc);
        out.push((mix, mops(n_ops, d), mb(index.mem_usage())));
    }
    out
}

fn hybrid_vs_original<D, H>(
    id: &str,
    title: &str,
    scale: Scale,
    make_dyn: impl Fn() -> D,
    make_hybrid: impl Fn() -> H,
) where
    D: OrderedIndex,
    H: OrderedIndex,
{
    header(id, title);
    println!(
        "{:<10} {:<14} {:>10} {:>8} | {:>10} {:>8} {:>8}",
        "keys", "workload", "orig Mops", "MB", "hyb Mops", "MB", "saved"
    );
    for (kname, keyset) in [
        ("rand-int", keys::rand_u64_keys(scale.n_keys, 3)),
        ("mono-int", keys::mono_u64_keys(scale.n_keys)),
        ("email", keys::email_keys(scale.n_keys / 2, 3)),
    ] {
        let orig = ycsb_suite(&make_dyn, &keyset, scale.n_ops);
        let hybrid = ycsb_suite(&make_hybrid, &keyset, scale.n_ops);
        for ((mix, ot, om), (_, ht, hm)) in orig.iter().zip(hybrid.iter()) {
            println!(
                "{:<10} {:<14} {:>10.2} {:>8.1} | {:>10.2} {:>8.1} {:>7.0}%",
                kname,
                mix.name(),
                ot,
                om,
                ht,
                hm,
                100.0 * (1.0 - hm / om)
            );
        }
    }
    println!("(paper: hybrids save 30-70% memory; slower inserts — the uniqueness check —");
    println!(" faster skewed updates, comparable reads, slower scans)");
}

/// Figure 5.3.
pub fn fig5_3(scale: Scale) {
    hybrid_vs_original(
        "fig5_3",
        "Hybrid B+tree vs original B+tree (YCSB, primary index)",
        scale,
        BPlusTree::new,
        HybridBTree::new,
    );
}

/// Figure 5.4.
pub fn fig5_4(scale: Scale) {
    hybrid_vs_original(
        "fig5_4",
        "Hybrid Masstree vs original Masstree",
        scale,
        Masstree::new,
        HybridMasstree::new,
    );
}

/// Figure 5.5.
pub fn fig5_5(scale: Scale) {
    hybrid_vs_original(
        "fig5_5",
        "Hybrid Skip List vs original Skip List",
        scale,
        SkipList::new,
        HybridSkipList::new,
    );
}

/// Figure 5.6.
pub fn fig5_6(scale: Scale) {
    hybrid_vs_original(
        "fig5_6",
        "Hybrid ART vs original ART",
        scale,
        Art::new,
        HybridArt::new,
    );
}

/// Figure 5.7: ratio-based merge-trigger sensitivity.
pub fn fig5_7(scale: Scale) {
    header("fig5_7", "merge-ratio sensitivity (Hybrid B+tree, rand-int keys)");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "ratio", "insert Mops", "read Mops", "merges"
    );
    let keyset = keys::rand_u64_keys(scale.n_keys, 5);
    for ratio in [1usize, 2, 5, 10, 20, 50, 100] {
        let mut h = HybridBTree::with_config(MergeTrigger::Ratio(ratio), true);
        let d_ins = time(|| {
            for (i, k) in keyset.iter().enumerate() {
                h.insert(k, i as u64);
            }
        });
        let read_t = crate::experiments::ch2::read_tput(&keyset, scale.n_ops, |k| h.get(k).is_some());
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>10}",
            ratio,
            mops(keyset.len(), d_ins),
            read_t,
            h.merge_stats().merges
        );
    }
    println!("(paper: larger ratios read slightly faster but write slower; 10 balances)");

    // Ablation beyond the thesis's shipped code: merge-all vs merge-cold
    // (§5.2.2 discusses the spectrum; we implement both). Workload: skewed
    // updates over a loaded set — merge-cold's best case.
    println!();
    println!("merge strategy ablation (skewed update workload):");
    println!("{:<12} {:>14} {:>10} {:>14}", "strategy", "update Mops", "merges", "read Mops");
    for (name, strategy) in [("merge-all", MergeStrategy::All), ("merge-cold", MergeStrategy::Cold)] {
        let mut h: HybridBTree =
            DualStage::with_strategy(MergeTrigger::Ratio(10), true, strategy);
        for (i, k) in keyset.iter().enumerate() {
            h.insert(k, i as u64);
        }
        h.force_merge().unwrap();
        let mut z = memtree_workload::zipf::Zipfian::new(keyset.len(), 13);
        let picks: Vec<usize> = (0..scale.n_ops).map(|_| z.next_scrambled()).collect();
        let d = time(|| {
            for (j, &i) in picks.iter().enumerate() {
                h.update(&keyset[i], j as u64);
            }
        });
        let merges = h.merge_stats().merges;
        let read_t =
            crate::experiments::ch2::read_tput(&keyset, scale.n_ops, |k| h.get(k).is_some());
        println!(
            "{:<12} {:>14.2} {:>10} {:>14.2}",
            name,
            mops(picks.len(), d),
            merges,
            read_t
        );
    }
    println!("(merge-cold keeps re-written keys dynamic: fewer shadow rebuilds on skewed");
    println!(" updates, at the cost of hotness tracking)");
}

/// Figure 5.8: absolute merge time vs static-stage size.
pub fn fig5_8(scale: Scale) {
    header("fig5_8", "merge time vs static size (dynamic = 1/10 static)");
    println!("{:>14} {:>14} {:>16}", "static keys", "merge ms", "ms per 100k keys");
    let mut size = (scale.n_keys / 8).max(20_000);
    for _ in 0..4 {
        let static_keys = keys::rand_u64_keys(size, 7);
        let dyn_keys = keys::rand_u64_keys(size / 10, 99);
        let mut h = HybridBTree::with_config(MergeTrigger::Manual, false);
        for (i, k) in static_keys.iter().enumerate() {
            h.insert(k, i as u64);
        }
        h.force_merge().unwrap();
        for (i, k) in dyn_keys.iter().enumerate() {
            h.insert(k, i as u64 + 1_000_000_000);
        }
        let d = time(|| h.force_merge().unwrap());
        println!(
            "{:>14} {:>14.1} {:>16.2}",
            size,
            d.as_secs_f64() * 1e3,
            d.as_secs_f64() * 1e3 / (size as f64 / 1e5)
        );
        size *= 2;
    }
    println!("(paper: merge time grows linearly with index size; amortized cost constant)");
}

/// Figure 5.9: effect of the Bloom filter and the node cache.
pub fn fig5_9(scale: Scale) {
    header("fig5_9", "auxiliary structures: Bloom filter and node cache");
    let keyset = keys::rand_u64_keys(scale.n_keys, 5);
    println!("{:<34} {:>12} {:>10}", "configuration", "read Mops", "MB");
    for (name, bloom) in [("Hybrid B+tree, no bloom", false), ("Hybrid B+tree, +bloom", true)] {
        let mut h = HybridBTree::with_config(MergeTrigger::Ratio(10), bloom);
        for (i, k) in keyset.iter().enumerate() {
            h.insert(k, i as u64);
        }
        let t = crate::experiments::ch2::read_tput(&keyset, scale.n_ops, |k| h.get(k).is_some());
        println!("{:<34} {:>12.2} {:>10.1}", name, t, mb(h.mem_usage()));
    }
    for (name, cache) in [
        ("Hybrid-Compressed, no node cache", 0usize),
        ("Hybrid-Compressed, +node cache", 64),
    ] {
        let mut h: HybridCompressedBTree = DualStage::with_config(MergeTrigger::Ratio(10), true);
        for (i, k) in keyset.iter().enumerate() {
            h.insert(k, i as u64);
        }
        h.set_static_cache_blocks(cache);
        let t = crate::experiments::ch2::read_tput(&keyset, scale.n_ops, |k| h.get(k).is_some());
        println!("{:<34} {:>12.2} {:>10.1}", name, t, mb(h.mem_usage()));
    }
    println!("(paper: both auxiliaries lift read throughput substantially at small cost)");
}

/// Figure 5.10: secondary (non-unique) indexes, 10 values per key.
pub fn fig5_10(scale: Scale) {
    header("fig5_10", "secondary indexes: Hybrid B+tree vs original (10 values/key)");
    let uniques = keys::rand_u64_keys(scale.n_keys / 10, 7);
    println!("{:<18} {:>14} {:>14} {:>10}", "index", "insert Mops", "read Mops", "MB");
    // Original: B+tree secondary through the same arena wrapper.
    let mut orig: SecondaryIndex<BPlusTree> = SecondaryIndex::new();
    let d = time(|| {
        for (i, k) in uniques.iter().enumerate() {
            for rep in 0..10u64 {
                orig.insert(k, i as u64 * 10 + rep);
            }
        }
    });
    let t_ins_orig = mops(uniques.len() * 10, d);
    let mut z = memtree_workload::zipf::Zipfian::new(uniques.len(), 3);
    let picks: Vec<usize> = (0..scale.n_ops).map(|_| z.next_scrambled()).collect();
    let mut acc = 0usize;
    let d = time(|| {
        for &i in &picks {
            acc += orig.get(&uniques[i]).len();
        }
    });
    println!(
        "{:<18} {:>14.2} {:>14.2} {:>10.1}",
        "B+tree",
        t_ins_orig,
        mops(picks.len(), d),
        mb(orig.mem_usage())
    );

    let mut hyb: SecondaryIndex<HybridBTree> = SecondaryIndex::new();
    let d = time(|| {
        for (i, k) in uniques.iter().enumerate() {
            for rep in 0..10u64 {
                hyb.insert(k, i as u64 * 10 + rep);
            }
        }
    });
    let t_ins = mops(uniques.len() * 10, d);
    let d = time(|| {
        for &i in &picks {
            acc += hyb.get(&uniques[i]).len();
        }
    });
    std::hint::black_box(acc);
    println!(
        "{:<18} {:>14.2} {:>14.2} {:>10.1}",
        "Hybrid B+tree",
        t_ins,
        mops(picks.len(), d),
        mb(hyb.mem_usage())
    );
    println!("(paper: secondary hybrids close the insert gap — no uniqueness check — and");
    println!(" save even more memory since keys are never duplicated)");
}

fn hstore_run(
    id: &str,
    title: &str,
    scale: Scale,
    anticache: Option<(usize, Duration)>,
    mut load: impl FnMut(&mut Database) -> Box<dyn FnMut(&mut Database) -> &'static str>,
) {
    header(id, title);
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "index", "txn/s", "idx MB", "tuple MB", "evictions", "fetches"
    );
    for choice in [
        IndexChoice::BTree,
        IndexChoice::Hybrid,
        IndexChoice::HybridCompressed,
    ] {
        let mut db = Database::new(choice);
        if let Some((threshold, latency)) = anticache {
            db.enable_anticaching(threshold, latency);
        }
        let mut runner = load(&mut db);
        let warm = scale.n_ops / 20;
        for _ in 0..warm {
            runner(&mut db);
        }
        let txns = scale.n_ops / 4;
        let d = time(|| {
            for _ in 0..txns {
                runner(&mut db);
            }
        });
        let s = db.stats();
        println!(
            "{:<20} {:>10.0} {:>10.1} {:>10.1} {:>10} {:>10}",
            choice.name(),
            txns as f64 / d.as_secs_f64(),
            mb(s.primary_index_bytes + s.secondary_index_bytes),
            mb(s.tuple_bytes),
            s.evictions,
            s.fetches
        );
    }
}

/// Figure 5.11: TPC-C in memory.
pub fn fig5_11(scale: Scale) {
    hstore_run(
        "fig5_11",
        "H-Store TPC-C, in-memory (throughput + memory)",
        scale,
        None,
        |db| {
            let mut t = Tpcc::load(db, TpccConfig::small(), 42);
            Box::new(move |db| t.run_one(db).expect("txn"))
        },
    );
    println!("(paper: hybrids cost ~10% TPC-C throughput, save 40-55% index memory)");
}

/// Figure 5.12: Voter in memory.
pub fn fig5_12(scale: Scale) {
    hstore_run(
        "fig5_12",
        "H-Store Voter, in-memory",
        scale,
        None,
        |db| {
            let mut v = Voter::load(db, 6, 42);
            Box::new(move |db| v.run_one(db).expect("txn"))
        },
    );
    println!("(paper: Voter is index-heavy — hybrids save the most here)");
}

/// Figure 5.13: Articles in memory.
pub fn fig5_13(scale: Scale) {
    hstore_run(
        "fig5_13",
        "H-Store Articles, in-memory",
        scale,
        None,
        |db| {
            let mut a = Articles::load(db, 2000, 1000, 42);
            Box::new(move |db| a.run_one(db).expect("txn"))
        },
    );
    println!("(paper: read-mostly Articles loses only ~1% throughput with hybrids)");
}

/// Table 5.1: TPC-C transaction latency percentiles.
pub fn table5_1(scale: Scale) {
    header("table5_1", "TPC-C latency percentiles per index configuration");
    println!(
        "{:<20} {:>10} {:>10} {:>12}",
        "index", "p50 us", "p99 us", "max ms"
    );
    for choice in [
        IndexChoice::BTree,
        IndexChoice::Hybrid,
        IndexChoice::HybridCompressed,
    ] {
        let mut db = Database::new(choice);
        let mut tpcc = Tpcc::load(&mut db, TpccConfig::small(), 42);
        let txns = scale.n_ops / 4;
        let mut lat: Vec<f64> = Vec::with_capacity(txns);
        for _ in 0..txns {
            let d = time(|| {
                tpcc.run_one(&mut db).expect("txn");
            });
            lat.push(d.as_secs_f64());
        }
        lat.sort_by(f64::total_cmp);
        let p = |q: f64| lat[((lat.len() - 1) as f64 * q) as usize];
        println!(
            "{:<20} {:>10.1} {:>10.1} {:>12.2}",
            choice.name(),
            p(0.50) * 1e6,
            p(0.99) * 1e6,
            lat.last().unwrap() * 1e3
        );
    }
    println!("(paper: p50/p99 barely move; MAX grows with hybrids — the blocking merge)");
}

/// Anti-caching runs: Figures 5.14–5.16. The threshold is set so eviction
/// starts mid-run; the fetch latency models disk.
pub fn fig5_14(scale: Scale) {
    hstore_run(
        "fig5_14",
        "H-Store TPC-C, larger than memory (anti-caching)",
        scale,
        Some((40 << 20, Duration::from_micros(100))),
        |db| {
            let mut t = Tpcc::load(db, TpccConfig::small(), 42);
            Box::new(move |db| t.run_one(db).expect("txn"))
        },
    );
    println!("(paper: hybrids evict later and keep more hot tuples resident -> more txns)");
}

/// Voter under anti-caching.
pub fn fig5_15(scale: Scale) {
    hstore_run(
        "fig5_15",
        "H-Store Voter, larger than memory (anti-caching)",
        scale,
        Some((6 << 20, Duration::from_micros(100))),
        |db| {
            let mut v = Voter::load(db, 6, 42);
            Box::new(move |db| v.run_one(db).expect("txn"))
        },
    );
    println!("(paper: indexes cannot be evicted — B+tree exhausts memory first; Voter");
    println!(" never reads cold data so throughput stays flat)");
}

/// Articles under anti-caching.
pub fn fig5_16(scale: Scale) {
    hstore_run(
        "fig5_16",
        "H-Store Articles, larger than memory (anti-caching)",
        scale,
        Some((3 << 20, Duration::from_micros(100))),
        |db| {
            let mut a = Articles::load(db, 4000, 2000, 42);
            Box::new(move |db| a.run_one(db).expect("txn"))
        },
    );
    println!("(paper: Articles reads cold data occasionally — fetches dent throughput)");
}
