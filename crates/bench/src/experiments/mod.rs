//! One module per thesis chapter; one public function per table/figure.

pub mod ch2;
pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ch6;

use crate::Scale;

/// One registry row: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(Scale));

/// The full experiment registry.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("table1_1", "index memory share in H-Store (TPC-C/Voter/Articles)", ch2::table1_1 as fn(Scale)),
        ("table2_2", "point-query software profiling of the four trees", ch2::table2_2),
        ("fig2_5", "D-to-S rules: compact/compressed vs original trees", ch2::fig2_5),
        ("fig3_4", "FST vs pointer-based indexes (latency/memory)", ch3::fig3_4),
        ("fig3_5", "FST vs other succinct tries", ch3::fig3_5),
        ("fig3_6", "FST optimization breakdown", ch3::fig3_6),
        ("fig3_7", "LOUDS-Dense/Sparse trade-off (R sweep)", ch3::fig3_7),
        ("fig4_4", "SuRF false positive rates", ch4::fig4_4),
        ("fig4_5", "SuRF throughput", ch4::fig4_5),
        ("fig4_6", "SuRF build time", ch4::fig4_6),
        ("fig4_7", "SuRF thread scalability", ch4::fig4_7),
        ("table4_1", "ARF vs SuRF", ch4::table4_1),
        ("fig4_8", "LSM point + open-seek queries by filter", ch4::fig4_8),
        ("fig4_9", "LSM closed-seek queries by %-empty", ch4::fig4_9),
        ("fig4_11", "SuRF worst-case dataset", ch4::fig4_11),
        ("fig5_3", "Hybrid B+tree vs original", ch5::fig5_3),
        ("fig5_4", "Hybrid Masstree vs original", ch5::fig5_4),
        ("fig5_5", "Hybrid Skip List vs original", ch5::fig5_5),
        ("fig5_6", "Hybrid ART vs original", ch5::fig5_6),
        ("fig5_7", "merge-ratio sensitivity", ch5::fig5_7),
        ("fig5_8", "merge time vs static size", ch5::fig5_8),
        ("fig5_9", "auxiliary structures (Bloom/node cache)", ch5::fig5_9),
        ("fig5_10", "secondary-index hybrid vs original", ch5::fig5_10),
        ("fig5_11", "H-Store TPC-C in memory", ch5::fig5_11),
        ("fig5_12", "H-Store Voter in memory", ch5::fig5_12),
        ("fig5_13", "H-Store Articles in memory", ch5::fig5_13),
        ("table5_1", "TPC-C latency percentiles", ch5::table5_1),
        ("fig5_14", "TPC-C larger than memory (anti-caching)", ch5::fig5_14),
        ("fig5_15", "Voter larger than memory (anti-caching)", ch5::fig5_15),
        ("fig5_16", "Articles larger than memory (anti-caching)", ch5::fig5_16),
        ("fig6_8", "HOPE sample-size sensitivity", ch6::fig6_8),
        ("fig6_9", "HOPE compression rate (CPR)", ch6::fig6_9),
        ("fig6_10", "HOPE encode latency", ch6::fig6_10),
        ("fig6_11", "HOPE dictionary memory", ch6::fig6_11),
        ("fig6_12", "HOPE dictionary build-time breakdown", ch6::fig6_12),
        ("fig6_13", "HOPE batch encoding", ch6::fig6_13),
        ("fig6_14", "HOPE under key-distribution change", ch6::fig6_14),
        ("fig6_15", "HOPE+SuRF YCSB runtime", ch6::fig6_15),
        ("fig6_16", "HOPE+SuRF trie height", ch6::fig6_16),
        ("fig6_17", "HOPE+SuRF false positive rate", ch6::fig6_17),
        ("fig6_18", "HOPE+ART YCSB", ch6::fig6_18),
        ("fig6_19", "HOPE+HOT(crit-bit) YCSB", ch6::fig6_19),
        ("fig6_20", "HOPE+B+tree YCSB", ch6::fig6_20),
        ("fig6_21", "HOPE+Prefix B+tree YCSB", ch6::fig6_21),
    ]
}
