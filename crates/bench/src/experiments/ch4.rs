//! Chapter 4 experiments: SuRF microbenchmarks, ARF comparison, and the
//! LSM (RocksDB-style) system evaluation.

use crate::{header, mops, time, Scale};
use memtree_common::key::{decode_u64, encode_u64, prefix_successor};
use memtree_common::traits::{PointFilter, RangeFilter};
use memtree_filters::{Arf, BloomFilter};
use memtree_lsm::{Db, DbOptions, FilterKind, SeekResult};
use memtree_surf::{SuffixConfig, Surf};
use memtree_workload::zipf::Zipfian;
use memtree_workload::{keys, timeseries};
use std::time::Duration;

/// Builds the standard microbenchmark setup: a filter over half the keys,
/// queries drawn Zipf-style from the full set (≈50% members).
struct Setup {
    members: Vec<Vec<u8>>,
    queries: Vec<Vec<u8>>,
    is_int: bool,
}

fn setup(kind: &str, scale: Scale) -> Setup {
    let all = match kind {
        "rand-int" => keys::sorted_unique(keys::rand_u64_keys(scale.n_keys, 3)),
        _ => keys::sorted_unique(keys::email_keys(scale.n_keys / 2, 4)),
    };
    let members: Vec<Vec<u8>> = all.iter().step_by(2).cloned().collect();
    let mut z = Zipfian::new(all.len(), 17);
    let queries: Vec<Vec<u8>> = (0..scale.n_ops).map(|_| all[z.next_scrambled()].clone()).collect();
    Setup {
        members,
        queries,
        is_int: kind == "rand-int",
    }
}

fn range_of(q: &[u8], is_int: bool) -> (Vec<u8>, Vec<u8>) {
    if is_int {
        let k = decode_u64(q);
        (
            encode_u64(k.wrapping_add(1 << 37)).to_vec(),
            encode_u64(k.wrapping_add(1 << 38)).to_vec(),
        )
    } else {
        (
            q.to_vec(),
            prefix_successor(q).unwrap_or_else(|| vec![0xFF; 16]),
        )
    }
}

fn truth_point(members: &[Vec<u8>], q: &[u8]) -> bool {
    members.binary_search_by(|k| k.as_slice().cmp(q)).is_ok()
}

fn truth_range(members: &[Vec<u8>], lo: &[u8], hi: &[u8]) -> bool {
    let i = members.partition_point(|k| k.as_slice() < lo);
    i < members.len() && members[i].as_slice() < hi
}

/// Figure 4.4: FPR of SuRF variants vs same-size Bloom filters.
pub fn fig4_4(scale: Scale) {
    header("fig4_4", "false positive rate vs suffix bits (point & range)");
    for kind in ["rand-int", "email"] {
        let s = setup(kind, scale);
        println!("--- {kind} ({} members) ---", s.members.len());
        println!(
            "{:<16} {:>8} {:>12} {:>12} {:>12}",
            "filter", "bits/key", "point FPR%", "range FPR%", "mixed FPR%"
        );
        let configs: Vec<(String, SuffixConfig)> = vec![
            ("SuRF-Base".into(), SuffixConfig::None),
            ("SuRF-Hash4".into(), SuffixConfig::Hash(4)),
            ("SuRF-Hash8".into(), SuffixConfig::Hash(8)),
            ("SuRF-Real4".into(), SuffixConfig::Real(4)),
            ("SuRF-Real8".into(), SuffixConfig::Real(8)),
            ("SuRF-Mixed4+4".into(), SuffixConfig::Mixed(4, 4)),
        ];
        for (name, cfg) in configs {
            let surf = Surf::from_keys(&s.members, cfg);
            let (pf, rf, mf) = fprs(&surf, &s);
            println!(
                "{:<16} {:>8.1} {:>12.3} {:>12.3} {:>12.3}",
                name,
                surf.bits_per_key(),
                pf * 100.0,
                rf * 100.0,
                mf * 100.0
            );
        }
        for bpk in [10.0, 14.0] {
            let bloom = BloomFilter::from_keys(&s.members, bpk);
            let mut fp = 0usize;
            let mut neg = 0usize;
            for q in &s.queries {
                if !truth_point(&s.members, q) {
                    neg += 1;
                    if bloom.may_contain(q) {
                        fp += 1;
                    }
                }
            }
            println!(
                "{:<16} {:>8.1} {:>12.3} {:>12} {:>12}",
                format!("Bloom{}", bpk as u32),
                bloom.bits_per_key(),
                100.0 * fp as f64 / neg.max(1) as f64,
                "n/a",
                "n/a"
            );
        }
    }
    println!("(paper: Bloom wins on points at equal size; only SuRF answers ranges;");
    println!(" real suffixes help ranges, hash suffixes help points)");
}

fn fprs(surf: &Surf, s: &Setup) -> (f64, f64, f64) {
    let (mut pfp, mut pneg) = (0usize, 0usize);
    let (mut rfp, mut rneg) = (0usize, 0usize);
    let (mut mfp, mut mneg) = (0usize, 0usize);
    for (i, q) in s.queries.iter().enumerate() {
        if !truth_point(&s.members, q) {
            pneg += 1;
            if surf.may_contain(q) {
                pfp += 1;
            }
        }
        let (lo, hi) = range_of(q, s.is_int);
        if !truth_range(&s.members, &lo, &hi) {
            rneg += 1;
            if surf.may_contain_range(&lo, &hi) {
                rfp += 1;
            }
        }
        // Mixed: alternate point and range.
        if i % 2 == 0 {
            if !truth_point(&s.members, q) {
                mneg += 1;
                if surf.may_contain(q) {
                    mfp += 1;
                }
            }
        } else if !truth_range(&s.members, &lo, &hi) {
            mneg += 1;
            if surf.may_contain_range(&lo, &hi) {
                mfp += 1;
            }
        }
    }
    (
        pfp as f64 / pneg.max(1) as f64,
        rfp as f64 / rneg.max(1) as f64,
        mfp as f64 / mneg.max(1) as f64,
    )
}

/// Figure 4.5: filter throughput.
pub fn fig4_5(scale: Scale) {
    header("fig4_5", "filter throughput (Mops/s)");
    for kind in ["rand-int", "email"] {
        let s = setup(kind, scale);
        println!("--- {kind} ---");
        println!("{:<16} {:>10} {:>10} {:>10}", "filter", "point", "range", "count");
        for (name, cfg) in [
            ("SuRF-Base", SuffixConfig::None),
            ("SuRF-Hash4", SuffixConfig::Hash(4)),
            ("SuRF-Real4", SuffixConfig::Real(4)),
        ] {
            let surf = Surf::from_keys(&s.members, cfg);
            let mut acc = 0usize;
            let dp = time(|| {
                for q in &s.queries {
                    acc += usize::from(surf.may_contain(q));
                }
            });
            let dr = time(|| {
                for q in &s.queries {
                    let (lo, hi) = range_of(q, s.is_int);
                    acc += usize::from(surf.may_contain_range(&lo, &hi));
                }
            });
            let dc = time(|| {
                for pair in s.queries.chunks(2).take(s.queries.len() / 4) {
                    if pair.len() == 2 {
                        let (lo, hi) = if pair[0] <= pair[1] {
                            (&pair[0], &pair[1])
                        } else {
                            (&pair[1], &pair[0])
                        };
                        acc += surf.count(lo, hi);
                    }
                }
            });
            std::hint::black_box(acc);
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.2}",
                name,
                mops(s.queries.len(), dp),
                mops(s.queries.len(), dr),
                mops(s.queries.len() / 4, dc)
            );
        }
        let bloom = BloomFilter::from_keys(&s.members, 14.0);
        let mut acc = 0usize;
        let dp = time(|| {
            for q in &s.queries {
                acc += usize::from(bloom.may_contain(q));
            }
        });
        std::hint::black_box(acc);
        println!(
            "{:<16} {:>10.2} {:>10} {:>10}",
            "Bloom14",
            mops(s.queries.len(), dp),
            "n/a",
            "n/a"
        );
    }
    println!("(paper: SuRF within ~2x of Bloom on int points, slower on emails; only");
    println!(" SuRF serves ranges/counts)");
}

/// Figure 4.6: build time.
pub fn fig4_6(scale: Scale) {
    header("fig4_6", "filter build time");
    for kind in ["rand-int", "email"] {
        let s = setup(kind, scale);
        print!("{kind:<10}");
        for (name, cfg) in [
            ("SuRF-Base", SuffixConfig::None),
            ("SuRF-Real8", SuffixConfig::Real(8)),
        ] {
            let d = time(|| {
                std::hint::black_box(Surf::from_keys(&s.members, cfg));
            });
            print!("  {name}: {:.0} ms", d.as_secs_f64() * 1e3);
        }
        for bpk in [10.0, 14.0] {
            let d = time(|| {
                std::hint::black_box(BloomFilter::from_keys(&s.members, bpk));
            });
            print!("  Bloom{}: {:.0} ms", bpk as u32, d.as_secs_f64() * 1e3);
        }
        println!();
    }
    println!("(paper: SuRF builds faster — one sequential scan vs k random writes/key)");
}

/// Figure 4.7: point-query scalability with threads.
pub fn fig4_7(scale: Scale) {
    header("fig4_7", "SuRF point-query scalability (lock-free reads)");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("(host has {cores} core(s) — scaling flattens at that point)");
    let s = setup("rand-int", scale);
    let surf = Surf::from_keys(&s.members, SuffixConfig::Real(4));
    println!("{:>8} {:>14} {:>10}", "threads", "total Mops/s", "speedup");
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let per = s.queries.len() / threads;
        let d = time(|| {
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let chunk = &s.queries[t * per..(t + 1) * per];
                    let surf = &surf;
                    scope.spawn(move || {
                        let mut acc = 0usize;
                        for q in chunk {
                            acc += usize::from(surf.may_contain(q));
                        }
                        std::hint::black_box(acc);
                    });
                }
            });
        });
        let tput = mops(per * threads, d);
        if threads == 1 {
            base = tput;
        }
        println!("{:>8} {:>14.2} {:>9.1}x", threads, tput, tput / base);
    }
    println!("(paper: near-perfect scaling — SuRF is read-only and lock-free)");
}

/// Table 4.1: ARF vs SuRF on 64-bit integer range filtering.
pub fn table4_1(scale: Scale) {
    header("table4_1", "ARF vs SuRF (~50%-empty ranges, half the keys stored)");
    // Range-filter accuracy depends on truncation depth, which needs key
    // density: keep at least 1M keys even in quick mode.
    let n = scale.n_keys.max(1_000_000);
    let all: Vec<u64> = {
        let mut v: Vec<u64> = keys::rand_u64_keys(n, 31)
            .iter()
            .map(|k| decode_u64(k))
            .collect();
        v.sort_unstable();
        v
    };
    let members: Vec<u64> = all.iter().step_by(2).copied().collect();
    let member_keys: Vec<Vec<u8>> = members.iter().map(|&k| encode_u64(k).to_vec()).collect();
    let bits_per_key = 14usize;

    // Queries: Zipf over the full set. The paper's 2^40 range gives ~50%
    // empty results at 10M keys; scale the range to our key density so the
    // empty fraction matches: P(hit) = 1 - e^{-R*members/2^64} = 0.5.
    let range = ((u64::MAX / all.len() as u64) as f64 * 1.39) as u64;
    let mut z = Zipfian::new(all.len(), 3);
    let queries: Vec<(u64, u64)> = (0..scale.n_ops)
        .map(|_| {
            let base = all[z.next_scrambled()];
            (base, base.saturating_add(range))
        })
        .collect();
    let truth = |lo: u64, hi: u64| {
        let i = members.partition_point(|&k| k < lo);
        i < members.len() && members[i] <= hi
    };

    // ARF: build + train on 20% of the queries.
    let train_n = queries.len() / 5;
    let build_train = time(|| {
        let mut arf = Arf::new(members.clone(), bits_per_key * members.len());
        for &(lo, hi) in &queries[..train_n] {
            arf.train(lo, hi, truth(lo, hi));
        }
        arf.freeze();
        std::hint::black_box(&arf);
    });
    let mut arf = Arf::new(members.clone(), bits_per_key * members.len());
    let train_mem = arf.size_bytes();
    for &(lo, hi) in &queries[..train_n] {
        arf.train(lo, hi, truth(lo, hi));
    }
    arf.freeze();
    let eval = &queries[train_n..];
    let mut fp = 0usize;
    let mut neg = 0usize;
    let d_arf = time(|| {
        for &(lo, hi) in eval {
            let maybe = arf.may_contain_range_u64(lo, hi);
            if !truth(lo, hi) {
                neg += 1;
                if maybe {
                    fp += 1;
                }
            }
        }
    });
    let arf_fpr = 100.0 * fp as f64 / neg.max(1) as f64;

    // SuRF sized to the same bits/key.
    let build_surf = time(|| {
        std::hint::black_box(Surf::from_keys(&member_keys, SuffixConfig::Real(4)));
    });
    let surf = Surf::from_keys(&member_keys, SuffixConfig::Real(4));
    let mut fp = 0usize;
    let mut neg = 0usize;
    let d_surf = time(|| {
        for &(lo, hi) in eval {
            let maybe = surf.may_contain_range(&encode_u64(lo), &encode_u64(hi.saturating_add(1)));
            if !truth(lo, hi) {
                neg += 1;
                if maybe {
                    fp += 1;
                }
            }
        }
    });
    let surf_fpr = 100.0 * fp as f64 / neg.max(1) as f64;

    println!("{:<28} {:>12} {:>12}", "", "ARF", "SuRF");
    println!("{:<28} {:>12} {:>12.1}", "bits per key", bits_per_key, surf.bits_per_key());
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "range query Mops/s",
        mops(eval.len(), d_arf),
        mops(eval.len(), d_surf)
    );
    println!("{:<28} {:>12.2} {:>12.2}", "false positive rate %", arf_fpr, surf_fpr);
    println!(
        "{:<28} {:>12.0} {:>12.0}",
        "build(+train) time ms",
        build_train.as_secs_f64() * 1e3,
        build_surf.as_secs_f64() * 1e3
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "peak build memory MB",
        crate::mb(train_mem),
        crate::mb(surf.size_bytes())
    );
    println!("(paper: SuRF 20x faster, 12x more accurate, 98x faster to build; our ARF");
    println!(" builds lazily so its build-memory gap is smaller — see DESIGN.md)");
}

/// Aggregate event spacing (ns): one event per λ across *all* sensors —
/// exactly the paper's λ = 10^5 ns (§4.4).
const LAMBDA_AGG: u64 = 100_000;

fn build_lsm(filter: FilterKind, scale: Scale, latency: Duration) -> (Db, Vec<[u8; 16]>) {
    let sensors = 200;
    let lambda_per_sensor = LAMBDA_AGG * sensors;
    let duration = scale.n_keys as u64 * LAMBDA_AGG;
    let events = timeseries::sensor_events(sensors, lambda_per_sensor, duration, 13);
    let mut db = Db::new(DbOptions {
        memtable_bytes: 128 << 10,
        filter,
        cache_blocks: 256,
        io_read_latency: latency,
        ..Default::default()
    });
    let value = vec![b'v'; 64];
    let mut keys = Vec::with_capacity(events.len());
    for e in &events {
        db.put(&e.key(), &value).unwrap();
        keys.push(e.key());
    }
    db.flush().unwrap();
    db.reset_io_stats();
    (db, keys)
}

/// Figure 4.8: LSM point queries and open seeks under each filter.
pub fn fig4_8(scale: Scale) {
    header("fig4_8", "LSM point & open-seek queries by filter (time-series data)");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>10}",
        "filter", "point ops/s", "IO/op", "o-seek ops/s", "IO/op"
    );
    let latency = Duration::from_micros(20);
    for (name, filter) in [
        ("none", FilterKind::None),
        ("Bloom14", FilterKind::Bloom(14.0)),
        ("SuRF-Hash4", FilterKind::SurfHash(4)),
        ("SuRF-Real4", FilterKind::SurfReal(4)),
    ] {
        let (db, stored) = build_lsm(filter, scale, latency);
        let q = scale.n_ops / 20;
        // Point queries on random keys *inside* the populated time range —
        // almost all absent, but covered by SSTable ranges so filters are
        // actually consulted.
        let max_ts = u64::from_be_bytes(stored.last().unwrap()[..8].try_into().unwrap());
        let mut state = 5u64;
        let dp = time(|| {
            for _ in 0..q {
                let ts = memtree_common::hash::splitmix64(&mut state) % max_ts;
                let sensor = memtree_common::hash::splitmix64(&mut state) % 200;
                let mut k = [0u8; 16];
                k[..8].copy_from_slice(&ts.to_be_bytes());
                k[8..].copy_from_slice(&sensor.to_be_bytes());
                std::hint::black_box(db.get(&k));
            }
        });
        let point_io = db.io_stats().block_reads;
        db.reset_io_stats();
        // Open seeks from random timestamps.
        let ds = time(|| {
            for i in 0..q {
                let k = stored[(i * 7919) % stored.len()];
                std::hint::black_box(db.seek(&k, None));
            }
        });
        let seek_io = db.io_stats().block_reads;
        println!(
            "{:<12} {:>12.0} {:>10.3} {:>12.0} {:>10.3}",
            name,
            q as f64 / dp.as_secs_f64(),
            point_io as f64 / q as f64,
            q as f64 / ds.as_secs_f64(),
            seek_io as f64 / q as f64
        );
    }
    println!("(paper: filters cut point I/O; open seeks need >=1 I/O so SuRF gives ~1.5x)");
}

/// Figure 4.9: closed seeks, sweeping the fraction of empty results.
pub fn fig4_9(scale: Scale) {
    header("fig4_9", "LSM closed-seek queries vs %-empty (range size from e^{-R/lambda})");
    println!(
        "{:<10} {:<12} {:>12} {:>10}",
        "%empty", "filter", "ops/s", "IO/op"
    );
    let latency = Duration::from_micros(20);
    let lambda = LAMBDA_AGG as f64;
    for pct_empty in [10f64, 50.0, 90.0, 99.0] {
        // P(empty) = e^{-R/lambda}  =>  R = lambda * ln(1/P_empty).
        let range_ns = (lambda * (1.0 / (pct_empty / 100.0)).ln()).max(10.0) as u64;
        for (name, filter) in [
            ("none", FilterKind::None),
            ("Bloom14", FilterKind::Bloom(14.0)),
            ("SuRF-Real4", FilterKind::SurfReal(4)),
        ] {
            let (db, stored) = build_lsm(filter, scale, latency);
            let q = scale.n_ops / 20;
            let mut state = 3u64;
            let max_ts = u64::from_be_bytes(stored.last().unwrap()[..8].try_into().unwrap());
            let mut found = 0usize;
            let d = time(|| {
                for _ in 0..q {
                    let base = memtree_common::hash::splitmix64(&mut state) % max_ts;
                    let mut lo = [0u8; 16];
                    lo[..8].copy_from_slice(&base.to_be_bytes());
                    let mut hi = [0u8; 16];
                    hi[..8].copy_from_slice(&(base + range_ns).to_be_bytes());
                    if let SeekResult::Found { .. } = db.seek(&lo, Some(&hi)) {
                        found += 1;
                    }
                }
            });
            let io = db.io_stats().block_reads;
            println!(
                "{:<10.0} {:<12} {:>12.0} {:>10.3}   (hit rate {:.0}%)",
                pct_empty,
                name,
                q as f64 / d.as_secs_f64(),
                io as f64 / q as f64,
                100.0 * found as f64 / q as f64
            );
        }
    }
    println!("(paper: SuRF's advantage grows with %-empty, up to 5x at 99%)");
}

/// Figure 4.11: the adversarial worst-case dataset.
pub fn fig4_11(scale: Scale) {
    header("fig4_11", "SuRF worst-case dataset (Figure 4.10 construction)");
    println!(
        "{:<12} {:>12} {:>10} {:>16}",
        "dataset", "Mops point", "bits/key", "size vs raw keys"
    );
    let sets: Vec<(&str, Vec<Vec<u8>>)> = vec![
        ("worst-case", {
            let mut prefix_len = 3;
            while 2 * 4usize.pow(prefix_len as u32 + 1) <= scale.n_keys / 8 {
                prefix_len += 1;
            }
            keys::sorted_unique(keys::surf_worst_case(prefix_len, 58, 7))
        }),
        ("rand-int", keys::sorted_unique(keys::rand_u64_keys(scale.n_keys / 4, 1))),
        ("email", keys::sorted_unique(keys::email_keys(scale.n_keys / 4, 2))),
    ];
    for (name, keyset) in sets {
        let surf = Surf::from_keys(&keyset, SuffixConfig::None);
        let mut z = Zipfian::new(keyset.len(), 7);
        let picks: Vec<usize> = (0..scale.n_ops / 2).map(|_| z.next_scrambled()).collect();
        let mut acc = 0usize;
        let d = time(|| {
            for &i in &picks {
                acc += usize::from(surf.may_contain(&keyset[i]));
            }
        });
        std::hint::black_box(acc);
        let raw: usize = keyset.iter().map(|k| k.len()).sum();
        println!(
            "{:<12} {:>12.2} {:>10.1} {:>15.1}%",
            name,
            mops(picks.len(), d),
            surf.bits_per_key(),
            100.0 * surf.size_bytes() as f64 / raw as f64
        );
    }
    println!("(paper: the worst case forces 64-level traversals and ~64% of raw size —");
    println!(" near the information-theoretic lower bound for range filters)");
}
