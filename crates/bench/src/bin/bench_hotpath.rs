//! Hot-path kernel and batched multi-get benchmark.
//!
//! Three layers of ablation, written to `BENCH_hotpath.json`:
//!
//! 1. **Kernels** — in-word select (scalar byte-stepping vs SWAR broadword
//!    vs runtime-dispatched PDEP), `rank1` with the one-popcount `B = 64`
//!    fast path vs `B = 512` blocks, and byte-label search (scalar vs SWAR
//!    vs runtime-dispatched SSE2).
//! 2. **FST point lookups** — `TrieOpts::baseline()` (all §3.6
//!    optimizations off) vs `TrieOpts::default()` (vectorized), plus the
//!    batched `multi_get` against the per-key loop at several batch sizes
//!    for FST, Compact B+tree, Compact ART and the hybrid `DualStage`.
//! 3. **Thread scaling** — N reader threads over one shared static FST.
//!
//! Every variant is cross-checked against its scalar baseline before being
//! timed; a mismatch panics. `--smoke` runs tiny inputs (CI) and writes
//! into `target/` so the checkout stays clean. `--out PATH` overrides the
//! output path.
//!
//! Run from the repo root:
//! `cargo run -p memtree-bench --release --bin bench_hotpath`

use memtree_bench::{mops, time};
use memtree_btree::CompactBTree;
use memtree_common::hash::splitmix64;
use memtree_common::traits::{BatchProbe, OrderedIndex, StaticIndex, Value};
use memtree_fst::{Fst, TrieOpts};
use memtree_hybrid::{HybridBTree, MergeTrigger};
use memtree_succinct::{
    find_byte, find_byte_scalar, find_byte_swar, popcount_words, popcount_words_scalar,
    popcount_words_swar, select_in_word, select_in_word_scalar, select_in_word_swar, BitVector,
    RankSupport, SelectSupport,
};
use memtree_workload::keys;
use std::sync::Arc;
use std::time::Duration;

struct Config {
    n_keys: usize,
    n_reads: usize,
    kernel_iters: usize,
    runs: usize,
    threads: Vec<usize>,
    out_path: String,
    smoke: bool,
}

fn config() -> Config {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument: {other} (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    if smoke {
        Config {
            n_keys: 20_000,
            n_reads: 20_000,
            kernel_iters: 100_000,
            runs: 1,
            threads: if hw > 1 { vec![1, 2] } else { vec![1] },
            out_path: out.unwrap_or_else(|| "target/BENCH_hotpath_smoke.json".into()),
            smoke,
        }
    } else {
        Config {
            n_keys: 1_000_000,
            n_reads: 400_000,
            kernel_iters: 4_000_000,
            runs: 3,
            threads: [1usize, 2, 4, 8].iter().copied().filter(|&t| t <= hw).collect(),
            out_path: out.unwrap_or_else(|| "BENCH_hotpath.json".into()),
            smoke,
        }
    }
}

/// Best-of-runs duration (min rejects scheduler noise).
fn best<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    (0..runs).map(|_| time(&mut f)).min().unwrap()
}

// ---------------------------------------------------------------------------
// Cross-checks: every vectorized variant must agree with its scalar
// baseline on the exact inputs the timing loops use. Panic on mismatch —
// a wrong kernel must never produce a benchmark number.
// ---------------------------------------------------------------------------

fn crosscheck_kernels(words: &[u64], haystacks: &[Vec<u8>]) {
    for &w in words {
        for k in 1..=65u32 {
            let expect = select_in_word_scalar(w, k);
            assert_eq!(select_in_word_swar(w, k), expect, "swar select w={w:#x} k={k}");
            assert_eq!(select_in_word(w, k), expect, "dispatch select w={w:#x} k={k}");
        }
    }
    for hay in haystacks {
        for needle in [0u8, b'a', b'q', 0xFF] {
            let expect = find_byte_scalar(hay, needle);
            assert_eq!(find_byte_swar(hay, needle), expect, "swar find len={}", hay.len());
            assert_eq!(find_byte(hay, needle), expect, "dispatch find len={}", hay.len());
        }
    }
    for len in [0usize, 1, 2, 7, 8, 16, 31, 32, 64] {
        let w = &words[..len.min(words.len())];
        let expect = popcount_words_scalar(w);
        assert_eq!(popcount_words_swar(w), expect, "swar popcount len={len}");
        assert_eq!(popcount_words(w), expect, "dispatch popcount len={len}");
    }
    println!("kernel cross-check passed ({} words, {} haystacks)", words.len(), haystacks.len());
}

// ---------------------------------------------------------------------------
// Layer 1: kernel ablations
// ---------------------------------------------------------------------------

struct KernelNumbers {
    select_scalar: f64,
    select_swar: f64,
    select_dispatch: f64,
    rank_b512: f64,
    rank_b64: f64,
    find_scalar: f64,
    find_swar: f64,
    find_dispatch: f64,
    pop_scalar: f64,
    pop_swar: f64,
    pop_dispatch: f64,
}

fn bench_kernels(cfg: &Config) -> KernelNumbers {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let words: Vec<u64> = (0..4096).map(|_| splitmix64(&mut state)).collect();
    let ks: Vec<u32> = words
        .iter()
        .map(|&w| 1 + (splitmix64(&mut state) % w.count_ones().max(1) as u64) as u32)
        .collect();
    // Label-node-shaped haystacks (sparse nodes are mostly < 64 labels).
    let haystacks: Vec<Vec<u8>> = (0..1024)
        .map(|_| {
            let len = 4 + (splitmix64(&mut state) % 60) as usize;
            (0..len).map(|_| (splitmix64(&mut state) % 26) as u8 + b'a').collect()
        })
        .collect();
    crosscheck_kernels(&words[..256], &haystacks[..128]);

    let iters = cfg.kernel_iters;
    let n = words.len();
    let run_select = |f: &dyn Fn(u64, u32) -> u32| {
        best(cfg.runs, || {
            let mut acc = 0u64;
            for i in 0..iters {
                let j = i % n;
                acc = acc.wrapping_add(f(words[j], ks[j]) as u64);
            }
            std::hint::black_box(acc);
        })
    };
    let select_scalar = mops(iters, run_select(&select_in_word_scalar));
    let select_swar = mops(iters, run_select(&select_in_word_swar));
    let select_dispatch = mops(iters, run_select(&select_in_word));

    // rank1: same bit vector, wide blocks vs the B=64 one-popcount path.
    let bits: BitVector = (0..1 << 20).map(|_| splitmix64(&mut state) & 1 == 1).collect();
    let r64 = RankSupport::new(&bits, 64);
    let r512 = RankSupport::new(&bits, 512);
    let positions: Vec<usize> =
        (0..65536).map(|_| (splitmix64(&mut state) % bits.len() as u64) as usize).collect();
    let np = positions.len();
    let run_rank = |r: &RankSupport| {
        best(cfg.runs, || {
            let mut acc = 0usize;
            for i in 0..iters {
                acc = acc.wrapping_add(r.rank1(&bits, positions[i % np]));
            }
            std::hint::black_box(acc);
        })
    };
    let rank_b512 = mops(iters, run_rank(&r512));
    let rank_b64 = mops(iters, run_rank(&r64));

    let nh = haystacks.len();
    let run_find = |f: &dyn Fn(&[u8], u8) -> Option<usize>| {
        best(cfg.runs, || {
            let mut acc = 0usize;
            for i in 0..iters {
                let hay = &haystacks[i % nh];
                let needle = (i % 26) as u8 + b'a';
                acc = acc.wrapping_add(f(hay, needle).unwrap_or(64));
            }
            std::hint::black_box(acc);
        })
    };
    let find_scalar = mops(iters, run_find(&find_byte_scalar));
    let find_swar = mops(iters, run_find(&find_byte_swar));
    let find_dispatch = mops(iters, run_find(&find_byte));

    // popcount_words over rank-block-shaped slices (8 words = 512 bits).
    let pop_iters = iters / 4;
    let run_pop = |f: &dyn Fn(&[u64]) -> u32| {
        best(cfg.runs, || {
            let mut acc = 0u64;
            for i in 0..pop_iters {
                let j = (i * 8) % (n - 8);
                acc = acc.wrapping_add(f(&words[j..j + 8]) as u64);
            }
            std::hint::black_box(acc);
        })
    };
    let pop_scalar = mops(pop_iters, run_pop(&popcount_words_scalar));
    let pop_swar = mops(pop_iters, run_pop(&popcount_words_swar));
    let pop_dispatch = mops(pop_iters, run_pop(&popcount_words));

    println!("select_in_word   scalar {select_scalar:.0}  swar {select_swar:.0}  dispatch {select_dispatch:.0} Mops/s");
    println!("rank1            B=512  {rank_b512:.0}  B=64 {rank_b64:.0} Mops/s");
    println!("find_byte        scalar {find_scalar:.0}  swar {find_swar:.0}  dispatch {find_dispatch:.0} Mops/s");
    println!("popcount_words8  scalar {pop_scalar:.0}  swar {pop_swar:.0}  dispatch {pop_dispatch:.0} Mops/s");
    KernelNumbers {
        select_scalar,
        select_swar,
        select_dispatch,
        rank_b512,
        rank_b64,
        find_scalar,
        find_swar,
        find_dispatch,
        pop_scalar,
        pop_swar,
        pop_dispatch,
    }
}

// ---------------------------------------------------------------------------
// Rank/select configuration sweep — the space-time Pareto frontier
// (basic-block size × select sampling rate) instead of two hardcoded
// layouts. `bits_per_key` prices the support structures (rank LUT + select
// LUT) per set bit; rates are measured on the same bit vector.
// ---------------------------------------------------------------------------

struct ParetoPoint {
    block_bits: usize,
    sample: usize,
    bits_per_key: f64,
    rank_mops: f64,
    select_mops: f64,
    mixed_mops: f64,
}

fn bench_rank_select_pareto(cfg: &Config) -> Vec<ParetoPoint> {
    const BLOCK_BITS: [usize; 5] = [64, 128, 256, 512, 1024];
    const SAMPLES: [usize; 3] = [16, 64, 256];
    let nbits: usize = if cfg.smoke { 1 << 16 } else { 1 << 22 };
    let mut state = 0xABCD_EF01_2345_6789u64;
    // S-LOUDS-like density: roughly every other bit set.
    let bv: BitVector = (0..nbits).map(|_| splitmix64(&mut state) & 1 == 1).collect();
    // Naive reference: sorted positions of set bits — rank is a partition
    // point, select is an array index.
    let positions: Vec<usize> = (0..nbits).filter(|&i| bv.get(i)).collect();
    let ones = positions.len();
    let nq = 65_536usize;
    let qpos: Vec<usize> = (0..nq).map(|_| (splitmix64(&mut state) % nbits as u64) as usize).collect();
    let qsel: Vec<usize> = (0..nq).map(|_| 1 + (splitmix64(&mut state) % ones as u64) as usize).collect();
    let iters = (cfg.kernel_iters / 4).max(nq);

    let selects: Vec<SelectSupport> =
        SAMPLES.iter().map(|&s| SelectSupport::new(&bv, s)).collect();
    // Cross-check every support against the naive reference before timing.
    for (si, sel) in selects.iter().enumerate() {
        assert_eq!(sel.ones(), ones);
        for &i in qsel.iter().take(512) {
            assert_eq!(sel.select1(&bv, i), positions[i - 1], "select sample {}", SAMPLES[si]);
        }
    }
    let select_mops: Vec<f64> = selects
        .iter()
        .map(|sel| {
            mops(
                iters,
                best(cfg.runs, || {
                    let mut acc = 0usize;
                    for i in 0..iters {
                        acc = acc.wrapping_add(sel.select1(&bv, qsel[i % nq]));
                    }
                    std::hint::black_box(acc);
                }),
            )
        })
        .collect();

    let mut out = Vec::new();
    for &block_bits in &BLOCK_BITS {
        let rank = RankSupport::new(&bv, block_bits);
        for &p in qpos.iter().take(512) {
            assert_eq!(
                rank.rank1(&bv, p),
                positions.partition_point(|&q| q <= p),
                "rank block {block_bits}"
            );
        }
        let rank_mops = mops(
            iters,
            best(cfg.runs, || {
                let mut acc = 0usize;
                for i in 0..iters {
                    acc = acc.wrapping_add(rank.rank1(&bv, qpos[i % nq]));
                }
                std::hint::black_box(acc);
            }),
        );
        for (si, &sample) in SAMPLES.iter().enumerate() {
            let sel = &selects[si];
            let mixed_mops = mops(
                iters,
                best(cfg.runs, || {
                    let mut acc = 0usize;
                    for i in 0..iters {
                        let j = i % nq;
                        acc = acc.wrapping_add(if i & 1 == 0 {
                            rank.rank1(&bv, qpos[j])
                        } else {
                            sel.select1(&bv, qsel[j])
                        });
                    }
                    std::hint::black_box(acc);
                }),
            );
            let bits_per_key =
                ((rank.mem_usage() + sel.mem_usage()) as f64 * 8.0) / ones as f64;
            println!(
                "pareto B={block_bits:<4} S={sample:<3}  {bits_per_key:.3} bits/key  rank {rank_mops:.1}  select {:.1}  mixed {mixed_mops:.1} Mops/s",
                select_mops[si]
            );
            out.push(ParetoPoint {
                block_bits,
                sample,
                bits_per_key,
                rank_mops,
                select_mops: select_mops[si],
                mixed_mops,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Layer 2: FST point lookups (scalar vs vectorized) and batched multi-get
// ---------------------------------------------------------------------------

fn probe_set(entries: &[(Vec<u8>, Value)], n_reads: usize, seed: u64) -> Vec<Vec<u8>> {
    // Half hits (uniform over entries), half misses (perturbed keys).
    let mut state = seed;
    (0..n_reads)
        .map(|i| {
            let pick = (splitmix64(&mut state) % entries.len() as u64) as usize;
            let mut k = entries[pick].0.clone();
            if i % 2 == 1 {
                let last = k.len() - 1;
                k[last] ^= 0x55;
            }
            k
        })
        .collect()
}

fn bench_point_lookup(cfg: &Config, entries: &[(Vec<u8>, Value)]) -> (f64, f64, f64) {
    let scalar = Fst::build_with(entries, TrieOpts::baseline());
    let vector = Fst::build_with(entries, TrieOpts::default());
    let probes = probe_set(entries, cfg.n_reads, 7);
    let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
    // Differential check before timing: both builds must agree everywhere.
    for k in &refs {
        assert_eq!(scalar.get(k), vector.get(k), "baseline/vectorized disagree");
    }
    let t_scalar = best(cfg.runs, || {
        let hits = refs.iter().filter(|k| scalar.get(k).is_some()).count();
        std::hint::black_box(hits);
    });
    let t_vector = best(cfg.runs, || {
        let hits = refs.iter().filter(|k| vector.get(k).is_some()).count();
        std::hint::black_box(hits);
    });
    let (scalar_mops, vector_mops) = (mops(refs.len(), t_scalar), mops(refs.len(), t_vector));
    let speedup = vector_mops / scalar_mops;
    println!(
        "fst point get    scalar {scalar_mops:.2}  vectorized {vector_mops:.2} Mops/s  ({speedup:.2}x)"
    );
    (scalar_mops, vector_mops, speedup)
}

struct BatchLine {
    name: &'static str,
    batch: usize,
    per_key: f64,
    batched: f64,
}

fn bench_batched<S: BatchProbe>(
    cfg: &Config,
    name: &'static str,
    index: &S,
    refs: &[&[u8]],
    lines: &mut Vec<BatchLine>,
) {
    // Correctness first: batched answers must equal the per-key loop.
    let expect: Vec<Option<Value>> = refs.iter().map(|k| index.probe_one(k)).collect();
    for batch in [16usize, 64, 256] {
        let mut got = Vec::with_capacity(refs.len());
        for c in refs.chunks(batch) {
            index.multi_get(c, &mut got);
        }
        assert_eq!(got, expect, "{name} batched mismatch at batch {batch}");
        let t_loop = best(cfg.runs, || {
            let mut out: Vec<Option<Value>> = Vec::with_capacity(refs.len());
            for k in refs {
                out.push(index.probe_one(k));
            }
            std::hint::black_box(out.len());
        });
        let t_batch = best(cfg.runs, || {
            let mut out: Vec<Option<Value>> = Vec::with_capacity(refs.len());
            for c in refs.chunks(batch) {
                index.multi_get(c, &mut out);
            }
            std::hint::black_box(out.len());
        });
        let (per_key, batched) = (mops(refs.len(), t_loop), mops(refs.len(), t_batch));
        println!(
            "{name:<16} batch {batch:>3}  per-key {per_key:.2}  batched {batched:.2} Mops/s  ({:.2}x)",
            batched / per_key
        );
        lines.push(BatchLine {
            name,
            batch,
            per_key,
            batched,
        });
    }
}

// ---------------------------------------------------------------------------
// Compact ART adaptive-cutover ablation: per-key loop vs unconditionally
// batched descent vs the adaptive `BatchProbe::multi_get` (which picks per
// arena size). The small trie sits under `BATCH_MIN_ARENA_BYTES`, where the
// sorted-batch descent used to *lose* to the plain loop; the large trie
// sits above it, where batching wins. Adaptive must track the better side
// at both scales.
// ---------------------------------------------------------------------------

struct CutoverLine {
    scale: &'static str,
    n_keys: usize,
    arena_bytes: usize,
    batching_engaged: bool,
    per_key: f64,
    forced_batch: f64,
    adaptive: f64,
}

fn bench_art_cutover(cfg: &Config, lines: &mut Vec<CutoverLine>) {
    let scales: [(&'static str, usize); 2] = [
        ("small", if cfg.smoke { 4_000 } else { 30_000 }),
        ("large", cfg.n_keys),
    ];
    for (scale, n) in scales {
        let entries: Vec<(Vec<u8>, Value)> = keys::sorted_unique(keys::rand_u64_keys(n, 17))
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect();
        let art = memtree_art::CompactArt::build(&entries);
        let probes = probe_set(&entries, cfg.n_reads.min(100_000), 13);
        let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();

        // All three paths must agree before any timing.
        let expect: Vec<Option<Value>> = refs.iter().map(|k| art.get(k)).collect();
        for use_forced in [false, true] {
            let mut got = Vec::with_capacity(refs.len());
            for c in refs.chunks(256) {
                if use_forced {
                    art.multi_get_batched(c, &mut got);
                } else {
                    art.multi_get(c, &mut got);
                }
            }
            assert_eq!(got, expect, "compact_art {scale} cutover mismatch (forced={use_forced})");
        }

        // Per-key baseline materializes the same output vector the
        // multi_get paths do, so the comparison isolates the descent
        // strategy rather than allocation overhead.
        let per_key = mops(
            refs.len(),
            best(cfg.runs, || {
                let mut out: Vec<Option<Value>> = Vec::with_capacity(refs.len());
                for k in &refs {
                    out.push(art.get(k));
                }
                std::hint::black_box(out.len());
            }),
        );
        let time_chunks = |forced: bool| {
            best(cfg.runs, || {
                let mut out: Vec<Option<Value>> = Vec::with_capacity(refs.len());
                for c in refs.chunks(256) {
                    if forced {
                        art.multi_get_batched(c, &mut out);
                    } else {
                        art.multi_get(c, &mut out);
                    }
                }
                std::hint::black_box(out.len());
            })
        };
        let forced_batch = mops(refs.len(), time_chunks(true));
        let adaptive = mops(refs.len(), time_chunks(false));
        let arena_bytes = art.mem_usage();
        let batching_engaged = arena_bytes >= memtree_art::BATCH_MIN_ARENA_BYTES;
        println!(
            "art cutover {scale:<5} ({n} keys, {arena_bytes} B, batch {})  per-key {per_key:.2}  forced {forced_batch:.2}  adaptive {adaptive:.2} Mops/s",
            if batching_engaged { "on" } else { "off" }
        );
        lines.push(CutoverLine {
            scale,
            n_keys: n,
            arena_bytes,
            batching_engaged,
            per_key,
            forced_batch,
            adaptive,
        });
    }
}

// ---------------------------------------------------------------------------
// Layer 3: multi-threaded readers over one shared static stage
// ---------------------------------------------------------------------------

fn bench_threads(cfg: &Config, fst: &Arc<Fst>, probes: &Arc<Vec<Vec<u8>>>) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &t in &cfg.threads {
        let d = best(cfg.runs, || {
            let handles: Vec<_> = (0..t)
                .map(|tid| {
                    let fst = Arc::clone(fst);
                    let probes = Arc::clone(probes);
                    std::thread::spawn(move || {
                        // Each thread probes the full set, offset so threads
                        // never march in lockstep over the same lines.
                        let n = probes.len();
                        let mut hits = 0usize;
                        let mut batch: Vec<&[u8]> = Vec::with_capacity(64);
                        let mut results = Vec::with_capacity(64);
                        let mut i = tid * n / t.max(1);
                        for _ in 0..(n / 64) {
                            batch.clear();
                            for _ in 0..64 {
                                batch.push(probes[i % n].as_slice());
                                i += 1;
                            }
                            results.clear();
                            fst.multi_get(&batch, &mut results);
                            hits += results.iter().flatten().count();
                        }
                        std::hint::black_box(hits)
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let total_ops = (probes.len() / 64) * 64 * t;
        let rate = mops(total_ops, d);
        println!("threads {t:>2}       {rate:.2} Mops/s aggregate (batched shared-FST readers)");
        out.push((t, rate));
    }
    out
}

fn main() {
    let cfg = config();
    let entries: Vec<(Vec<u8>, Value)> =
        keys::sorted_unique(keys::rand_u64_keys(cfg.n_keys, 1))
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect();

    let kn = bench_kernels(&cfg);
    let pareto = bench_rank_select_pareto(&cfg);
    let (scalar_mops, vector_mops, speedup) = bench_point_lookup(&cfg, &entries);

    // Batched multi-get across the tree zoo, same probe set everywhere.
    let probes = probe_set(&entries, cfg.n_reads.min(200_000), 11);
    let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
    let mut lines: Vec<BatchLine> = Vec::new();
    let fst = Fst::build_with(&entries, TrieOpts::default());
    bench_batched(&cfg, "fst", &fst, &refs, &mut lines);
    let cbt = CompactBTree::build(&entries);
    bench_batched(&cfg, "compact_btree", &cbt, &refs, &mut lines);
    let cart = memtree_art::CompactArt::build(&entries);
    bench_batched(&cfg, "compact_art", &cart, &refs, &mut lines);
    let mut hybrid = HybridBTree::with_config(MergeTrigger::Manual, true);
    for (k, v) in &entries {
        hybrid.insert(k, *v);
    }
    hybrid.force_merge().unwrap();
    // Dynamic stage holds fresh (shadowing) writes, as after a checkpoint.
    for (k, _) in entries.iter().step_by(64) {
        hybrid.update(k, 0xDEAD);
    }
    bench_batched(&cfg, "hybrid_btree", &hybrid, &refs, &mut lines);

    // Adaptive-cutover ablation for the Compact ART sorted-batch descent.
    let mut cutover: Vec<CutoverLine> = Vec::new();
    bench_art_cutover(&cfg, &mut cutover);

    // Thread scaling over a shared Arc<Fst>.
    let shared = Arc::new(Fst::build_with(&entries, TrieOpts::default()));
    let shared_probes = Arc::new(probes.clone());
    let threads = bench_threads(&cfg, &shared, &shared_probes);

    // ---- acceptance gates ----
    // The Pareto sweep must cover the promised configuration grid with
    // finite measurements (every run, including smoke — it's a schema
    // guarantee, not a performance one).
    assert!(
        pareto.len() >= 6,
        "rank_select_pareto needs >= 6 points, got {}",
        pareto.len()
    );
    for p in &pareto {
        assert!(
            p.bits_per_key.is_finite()
                && p.rank_mops.is_finite()
                && p.select_mops.is_finite()
                && p.mixed_mops.is_finite(),
            "non-finite pareto point at B={} S={}",
            p.block_bits,
            p.sample
        );
    }

    // Full runs only; smoke is correctness-only.
    if !cfg.smoke {
        assert!(
            speedup >= 1.3,
            "vectorized FST point lookup only {speedup:.2}x over scalar baseline (need >= 1.3x)"
        );
        let batched_wins = lines
            .iter()
            .filter(|l| l.batch >= 16 && l.batched > l.per_key)
            .count();
        assert!(
            batched_wins >= lines.len() / 2,
            "multi_get should beat the per-key loop at batch >= 16 (won {batched_wins}/{})",
            lines.len()
        );
        // The adaptive path must track the better of its two modes at both
        // scales (0.85 margin absorbs timer noise) — i.e. no regression on
        // small tries and no lost win on large ones.
        for l in &cutover {
            let best_mode = l.per_key.max(l.forced_batch);
            assert!(
                l.adaptive >= 0.85 * best_mode,
                "compact_art adaptive cutover regressed at {} scale: adaptive {:.2} vs best {:.2} Mops/s",
                l.scale,
                l.adaptive,
                best_mode
            );
        }
    }

    // ---- handwritten JSON ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\n    \"n_keys\": {},\n    \"n_reads\": {},\n    \"runs\": {},\n    \"smoke\": {},\n    \"kernel_mode\": \"{}\",\n    \"crc_kernel\": \"{}\",\n    \"note\": \"hot-path kernel ablations + batched multi-get; all rates in Mops/s\"\n  }},\n",
        cfg.n_keys,
        cfg.n_reads,
        cfg.runs,
        cfg.smoke,
        match memtree_common::kernel_mode() {
            memtree_common::KernelMode::Auto => "auto",
            memtree_common::KernelMode::Scalar => "scalar",
        },
        memtree_common::crc::active_kernel()
    ));
    json.push_str(&format!(
        "  \"kernels\": {{\n    \"select_in_word\": {{ \"scalar\": {:.1}, \"swar\": {:.1}, \"dispatch\": {:.1} }},\n    \"rank1\": {{ \"b512\": {:.1}, \"b64_fast_path\": {:.1} }},\n    \"find_byte\": {{ \"scalar\": {:.1}, \"swar\": {:.1}, \"dispatch\": {:.1} }},\n    \"popcount_words8\": {{ \"scalar\": {:.1}, \"swar\": {:.1}, \"dispatch\": {:.1} }}\n  }},\n",
        kn.select_scalar,
        kn.select_swar,
        kn.select_dispatch,
        kn.rank_b512,
        kn.rank_b64,
        kn.find_scalar,
        kn.find_swar,
        kn.find_dispatch,
        kn.pop_scalar,
        kn.pop_swar,
        kn.pop_dispatch
    ));
    json.push_str("  \"rank_select_pareto\": [\n");
    for (i, p) in pareto.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"block_bits\": {}, \"sample\": {}, \"bits_per_key\": {:.4}, \"rank_mops\": {:.3}, \"select_mops\": {:.3}, \"mixed_mops\": {:.3} }}{}\n",
            p.block_bits,
            p.sample,
            p.bits_per_key,
            p.rank_mops,
            p.select_mops,
            p.mixed_mops,
            if i + 1 < pareto.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fst_point_lookup\": {{ \"scalar_baseline\": {scalar_mops:.3}, \"vectorized\": {vector_mops:.3}, \"speedup\": {speedup:.3} }},\n"
    ));
    json.push_str("  \"multi_get\": [\n");
    for (i, l) in lines.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"index\": \"{}\", \"batch\": {}, \"per_key\": {:.3}, \"batched\": {:.3}, \"speedup\": {:.3} }}{}\n",
            l.name,
            l.batch,
            l.per_key,
            l.batched,
            l.batched / l.per_key,
            if i + 1 < lines.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"compact_art_cutover\": [\n");
    for (i, l) in cutover.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"scale\": \"{}\", \"n_keys\": {}, \"arena_bytes\": {}, \"batching_engaged\": {}, \"per_key\": {:.3}, \"forced_batch\": {:.3}, \"adaptive\": {:.3} }}{}\n",
            l.scale,
            l.n_keys,
            l.arena_bytes,
            l.batching_engaged,
            l.per_key,
            l.forced_batch,
            l.adaptive,
            if i + 1 < cutover.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"thread_scaling\": [\n");
    for (i, (t, rate)) in threads.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"threads\": {t}, \"mops\": {rate:.3} }}{}\n",
            if i + 1 < threads.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    // Schema self-check: every section a downstream reader depends on must
    // be present in the emitted document.
    for key in [
        "\"meta\"",
        "\"kernel_mode\"",
        "\"crc_kernel\"",
        "\"kernels\"",
        "\"popcount_words8\"",
        "\"rank_select_pareto\"",
        "\"block_bits\"",
        "\"sample\"",
        "\"bits_per_key\"",
        "\"mixed_mops\"",
        "\"fst_point_lookup\"",
        "\"multi_get\"",
        "\"compact_art_cutover\"",
        "\"thread_scaling\"",
    ] {
        assert!(json.contains(key), "BENCH_hotpath.json schema missing {key}");
    }

    if let Some(dir) = std::path::Path::new(&cfg.out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&cfg.out_path, json) {
        eprintln!("error: cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    }
    println!("wrote {}", cfg.out_path);
}
