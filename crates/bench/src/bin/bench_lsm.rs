//! Batched LSM read-path benchmark, written to `BENCH_lsm.json`.
//!
//! For every filter configuration (None / Bloom / SuRF-Hash / SuRF-Real /
//! SuRF-Mixed) the same negative-lookup workload runs twice: a per-key
//! `get` loop and chunked `multi_get` at several batch sizes. Because the
//! disk simulator counts every block read and the engine counts every
//! filter probe, the comparison is exact, not just a wall-clock race:
//! batching must perform **fewer filter passes** (one batch descent per
//! table instead of one per key) and **no more block fetches** (sorted
//! survivors share candidate blocks).
//!
//! Correctness gates run before any timing and in `--smoke` mode too:
//! `multi_get` must equal the per-key loop and `multi_scan` must equal a
//! per-range seek/next_after walk, on probe sets mixing hits, misses and
//! duplicates. The counter assertions (batched ≤ per-key everywhere;
//! strictly fewer filter passes and aggregate block fetches at batch ≥ 64)
//! also always run — they are deterministic, not timing-dependent.
//!
//! A second section sweeps the **compaction policy**: the same
//! overwrite-heavy load and the same point-read probe run under leveled
//! and tiered compaction, and the exact block counters give each policy's
//! write / read / space amplification. Plausibility gates (tiered writes
//! strictly fewer blocks, leveled reads strictly fewer blocks) are
//! deterministic and run in `--smoke` mode too.
//!
//! Run from the repo root:
//! `cargo run -p memtree-bench --release --bin bench_lsm`

use memtree_bench::{mops, time};
use memtree_common::key::encode_u64;
use memtree_lsm::{CompactionConfig, Db, DbOptions, FilterKind, FilterStats, SeekResult};
use std::time::Duration;

struct Config {
    n_keys: usize,
    n_probes: usize,
    runs: usize,
    out_path: String,
    smoke: bool,
}

fn config() -> Config {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument: {other} (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        Config {
            n_keys: 6_000,
            n_probes: 3_000,
            runs: 1,
            out_path: out.unwrap_or_else(|| "target/BENCH_lsm_smoke.json".into()),
            smoke,
        }
    } else {
        Config {
            n_keys: 150_000,
            n_probes: 60_000,
            runs: 3,
            out_path: out.unwrap_or_else(|| "BENCH_lsm.json".into()),
            smoke,
        }
    }
}

fn kinds() -> [(FilterKind, &'static str); 5] {
    [
        (FilterKind::None, "none"),
        (FilterKind::Bloom(14.0), "bloom14"),
        (FilterKind::SurfHash(8), "surf_hash8"),
        (FilterKind::SurfReal(8), "surf_real8"),
        (FilterKind::SurfMixed(4, 4), "surf_mixed4_4"),
    ]
}

/// Best-of-runs duration (min rejects scheduler noise).
fn best<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    (0..runs).map(|_| time(&mut f)).min().unwrap()
}

/// Stored keys are `i << 12`, so `(j << 12) | 777` is always a miss that
/// falls inside the table range (the interesting negative-lookup case —
/// fence indexes alone can't reject it, only a filter can).
fn stored_key(i: u64) -> [u8; 8] {
    encode_u64(i << 12)
}

fn negative_key(i: u64) -> [u8; 8] {
    encode_u64((i << 12) | 777)
}

fn build_db(cfg: &Config, filter: FilterKind) -> Db {
    let mut db = Db::new(DbOptions {
        memtable_bytes: 32 << 10, // many flushes: leveled shape, several tables
        cache_blocks: 0,          // every block fetch hits the simulated disk
        filter,
        ..Default::default()
    });
    for i in 0..cfg.n_keys as u64 {
        db.put(&stored_key(i), b"valuevalue").unwrap();
    }
    db.flush().unwrap();
    db
}

/// Scattered *clusters* of in-range misses: bases hop around the
/// keyspace, and each cluster of 64 visits consecutive gaps in a
/// scrambled order (37 is coprime to 64, so `j * 37 mod 64` permutes the
/// cluster). Clustering is what makes block sharing possible at all —
/// with one probe per ~2000 stored keys no batch size puts two probes in
/// the same data block — while the scrambled order leaves the batched
/// path real sorting work.
fn negative_probes(cfg: &Config) -> Vec<[u8; 8]> {
    let n = cfg.n_keys as u64;
    (0..cfg.n_probes as u64)
        .map(|i| {
            let base = (i / 64) * 7919 % n;
            let offset = (i * 37) % 64;
            negative_key((base + offset) % n)
        })
        .collect()
}

/// Hits, misses and duplicates interleaved, for the differential gates.
fn mixed_probes(cfg: &Config) -> Vec<[u8; 8]> {
    (0..cfg.n_probes as u64)
        .map(|i| match i % 4 {
            0 => stored_key((i * 31) % cfg.n_keys as u64),
            1 => negative_key((i * 13) % cfg.n_keys as u64),
            2 => stored_key(((i / 4) * 31) % cfg.n_keys as u64), // duplicate of a recent hit
            _ => encode_u64(u64::MAX - i),                       // out of range entirely
        })
        .collect()
}

fn check_differential(db: &Db, name: &str, probes: &[[u8; 8]]) {
    let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
    let expect: Vec<Option<Vec<u8>>> = refs.iter().map(|k| db.get(k)).collect();
    for chunk in [1usize, 16, 64, 333] {
        let mut got = Vec::with_capacity(refs.len());
        for c in refs.chunks(chunk) {
            got.extend(db.multi_get(c));
        }
        assert_eq!(got, expect, "{name}: multi_get differs from per-key gets at chunk {chunk}");
    }

    // multi_scan against a per-range seek-then-next walk.
    let ranges: Vec<(&[u8], usize)> = refs
        .iter()
        .take(200)
        .enumerate()
        .map(|(i, k)| (*k, [0usize, 1, 8, 64][i % 4]))
        .collect();
    let want: Vec<Vec<Vec<u8>>> = ranges
        .iter()
        .map(|&(low, n)| {
            let mut acc: Vec<Vec<u8>> = Vec::new();
            if n == 0 {
                return acc;
            }
            let mut cur = match db.seek(low, None) {
                SeekResult::Found { key } => Some(key),
                SeekResult::NotFound => None,
            };
            while let Some(k) = cur.take() {
                acc.push(k);
                if acc.len() == n {
                    break;
                }
                cur = match db.next_after(acc.last().unwrap(), None) {
                    SeekResult::Found { key } => Some(key),
                    SeekResult::NotFound => None,
                };
            }
            acc
        })
        .collect();
    assert_eq!(db.multi_scan(&ranges), want, "{name}: multi_scan differs from seek walk");
}

struct Counters {
    block_reads: u64,
    filter: FilterStats,
}

/// Runs `f` once with counters zeroed and returns what it cost.
fn counted<F: FnOnce()>(db: &Db, f: F) -> Counters {
    db.reset_io_stats();
    db.reset_filter_stats();
    f();
    Counters {
        block_reads: db.io_stats().block_reads,
        filter: db.filter_stats(),
    }
}

struct BatchLine {
    batch: usize,
    mops: f64,
    c: Counters,
}

struct KindReport {
    name: &'static str,
    tables: usize,
    per_key_mops: f64,
    per_key: Counters,
    batches: Vec<BatchLine>,
}

fn bench_kind(cfg: &Config, filter: FilterKind, name: &'static str) -> KindReport {
    let db = build_db(cfg, filter);
    check_differential(&db, name, &mixed_probes(cfg));

    let probes = negative_probes(cfg);
    let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();

    let per_key = counted(&db, || {
        let misses = refs.iter().filter(|k| db.get(k).is_none()).count();
        assert_eq!(misses, refs.len(), "{name}: negative probe unexpectedly hit");
    });
    let per_key_mops = mops(
        refs.len(),
        best(cfg.runs, || {
            let misses = refs.iter().filter(|k| db.get(k).is_none()).count();
            std::hint::black_box(misses);
        }),
    );

    let mut batches = Vec::new();
    for batch in [16usize, 64, 256] {
        let c = counted(&db, || {
            for chunk in refs.chunks(batch) {
                std::hint::black_box(db.multi_get(chunk).len());
            }
        });
        let rate = mops(
            refs.len(),
            best(cfg.runs, || {
                for chunk in refs.chunks(batch) {
                    std::hint::black_box(db.multi_get(chunk).len());
                }
            }),
        );
        batches.push(BatchLine { batch, mops: rate, c });
    }

    let report = KindReport {
        name,
        tables: db.level_sizes().iter().sum(),
        per_key_mops,
        per_key,
        batches,
    };
    println!(
        "{name:<14} {} tables  per-key {:>8.3} Mops/s  {:>7} reads  {:>7} passes",
        report.tables, report.per_key_mops, report.per_key.block_reads, report.per_key.filter.probe_passes
    );
    for b in &report.batches {
        println!(
            "{:<14} batch {:>3}  {:>8.3} Mops/s  {:>7} reads  {:>7} passes  ({:.2}x)",
            "", b.batch, b.mops, b.c.block_reads, b.c.filter.probe_passes, b.mops / report.per_key_mops
        );
    }
    report
}

fn enforce_gates(reports: &[KindReport]) {
    for r in reports {
        let has_filter = r.per_key.filter.keys_probed > 0;
        for b in &r.batches {
            assert!(
                b.c.block_reads <= r.per_key.block_reads,
                "{}: batched gets at batch {} fetched more blocks ({} > {})",
                r.name, b.batch, b.c.block_reads, r.per_key.block_reads
            );
            if has_filter {
                assert_eq!(
                    b.c.filter.keys_probed, r.per_key.filter.keys_probed,
                    "{}: batch {} probed a different key set through the filters",
                    r.name, b.batch
                );
                if b.batch >= 64 {
                    assert!(
                        b.c.filter.probe_passes < r.per_key.filter.probe_passes,
                        "{}: batch {} should need strictly fewer filter passes ({} vs {})",
                        r.name, b.batch, b.c.filter.probe_passes, r.per_key.filter.probe_passes
                    );
                }
            }
        }
    }
    // Aggregate at batch >= 64: strictly fewer block fetches too. The
    // filterless configuration guarantees this (every probe fetches a
    // block per key, and sorted batches share candidate blocks).
    let (mut agg_per_key, mut agg_batched) = (0u64, 0u64);
    for r in reports {
        agg_per_key += r.per_key.block_reads;
        agg_batched += r.batches.iter().filter(|b| b.batch == 64).map(|b| b.c.block_reads).sum::<u64>();
    }
    assert!(
        agg_batched < agg_per_key,
        "batched negative lookups should fetch strictly fewer blocks overall ({agg_batched} vs {agg_per_key})"
    );
}

struct PolicyReport {
    name: &'static str,
    tables: usize,
    levels: Vec<usize>,
    block_writes: u64,
    write_amp: f64,
    probe_reads: u64,
    read_amp: f64,
    used_bytes: u64,
    space_amp: f64,
}

/// The same overwrite-heavy load under one compaction policy, with
/// in-range negative probes interleaved throughout. Filterless with the
/// cache off, so the block counters measure the *level shape* — how much
/// each policy rewrites on the way down and how many runs a lookup must
/// consult — not filter quality.
///
/// Two details make the comparison honest:
///
/// * keys arrive in a scrambled order (stride 7919), so every flushed run
///   spans the whole keyspace and a negative probe has to consult each
///   run that the policy has left standing;
/// * read amplification is sampled *during* the load, not after a final
///   collapse — tiered's stacked runs between merges are its steady
///   state, and a post-load snapshot can catch it at a momentary minimum
///   where both policies look identical. Each probe's cost is the
///   `block_reads` delta across the `get` call alone, so compaction's own
///   reads never pollute the read-amplification number.
fn bench_policy(cfg: &Config, compaction: CompactionConfig, name: &'static str) -> PolicyReport {
    let mut db = Db::new(DbOptions {
        memtable_bytes: 8 << 10, // small memtable: many flushes, deep compaction churn
        cache_blocks: 0,
        filter: FilterKind::None,
        compaction,
        ..Default::default()
    });
    let n = cfg.n_keys as u64;
    db.reset_io_stats();
    let mut probes = 0u64;
    let mut probe_reads = 0u64;
    for round in 0..2u8 {
        let val = [b'0' + round; 10];
        for i in 0..n {
            db.put(&stored_key((i * 7919) % n), &val).unwrap();
            if i % 64 == 63 {
                let before = db.io_stats().block_reads;
                assert!(
                    db.get(&negative_key((i * 13) % n)).is_none(),
                    "{name}: negative probe unexpectedly hit"
                );
                probe_reads += db.io_stats().block_reads - before;
                probes += 1;
            }
        }
    }
    db.flush().unwrap();
    let block_writes = db.io_stats().block_writes;
    let block_size = DbOptions::default().block_size as f64;
    // User payload: 2 generations of (8-byte key + 10-byte value).
    let user_bytes = (2 * n * 18) as f64;
    let live_bytes = (n * 18) as f64;

    // Correctness sweep (unmeasured): round 1 must win everywhere.
    let mut i = 0u64;
    while i < n {
        let got = db.get(&stored_key(i));
        assert_eq!(got.as_deref(), Some(&[b'1'; 10][..]), "{name}: overwrite lost at key {i}");
        i += 7;
    }

    let report = PolicyReport {
        name,
        tables: db.level_sizes().iter().sum(),
        levels: db.level_sizes(),
        block_writes,
        write_amp: block_writes as f64 * block_size / user_bytes,
        probe_reads,
        read_amp: probe_reads as f64 / probes as f64,
        used_bytes: db.disk_handle().used_bytes(),
        space_amp: db.disk_handle().used_bytes() as f64 / live_bytes,
    };
    println!(
        "policy {:<8} levels {:?}  write-amp {:>6.2} ({} blocks)  read-amp {:>5.2} ({} reads / {} interleaved probes)  space-amp {:>5.2}",
        report.name, report.levels, report.write_amp, report.block_writes,
        report.read_amp, report.probe_reads, probes, report.space_amp
    );
    report
}

/// The classic amplification trade-off, as strict counter inequalities on
/// an identical workload: tiered must *write* strictly fewer blocks
/// (no re-merge of the run below) and leveled must *read* strictly fewer
/// blocks (one disjoint run per level instead of a stack).
fn enforce_policy_gates(leveled: &PolicyReport, tiered: &PolicyReport) {
    assert!(
        tiered.block_writes < leveled.block_writes,
        "tiered compaction should have strictly lower write amplification ({} vs {} blocks written)",
        tiered.block_writes, leveled.block_writes
    );
    assert!(
        leveled.probe_reads < tiered.probe_reads,
        "leveled compaction should have strictly lower read amplification ({} vs {} blocks read)",
        leveled.probe_reads, tiered.probe_reads
    );
}

fn write_json(cfg: &Config, reports: &[KindReport], policies: &[PolicyReport]) {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\n    \"n_keys\": {},\n    \"n_probes\": {},\n    \"runs\": {},\n    \"smoke\": {},\n    \"note\": \"negative point lookups, per-key get loop vs chunked multi_get; cache disabled so block_reads counts every fetch\"\n  }},\n",
        cfg.n_keys, cfg.n_probes, cfg.runs, cfg.smoke
    ));
    json.push_str("  \"kinds\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\n      \"kind\": \"{}\",\n      \"tables\": {},\n      \"per_key\": {{ \"mops\": {:.3}, \"block_reads\": {}, \"probe_passes\": {}, \"keys_probed\": {} }},\n      \"batches\": [\n",
            r.name, r.tables, r.per_key_mops, r.per_key.block_reads,
            r.per_key.filter.probe_passes, r.per_key.filter.keys_probed
        ));
        for (j, b) in r.batches.iter().enumerate() {
            json.push_str(&format!(
                "        {{ \"batch\": {}, \"mops\": {:.3}, \"block_reads\": {}, \"probe_passes\": {}, \"keys_probed\": {} }}{}\n",
                b.batch, b.mops, b.c.block_reads, b.c.filter.probe_passes, b.c.filter.keys_probed,
                if j + 1 < r.batches.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"policies\": [\n");
    for (i, p) in policies.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"tables\": {}, \"levels\": {:?}, \"block_writes\": {}, \"write_amp\": {:.3}, \"probe_reads\": {}, \"read_amp\": {:.3}, \"used_bytes\": {}, \"space_amp\": {:.3} }}{}\n",
            p.name, p.tables, p.levels, p.block_writes, p.write_amp,
            p.probe_reads, p.read_amp, p.used_bytes, p.space_amp,
            if i + 1 < policies.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&cfg.out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&cfg.out_path, json) {
        eprintln!("error: cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    }

    // Schema self-check: read the artifact back and require every key the
    // downstream tooling greps for. Catches a silently malformed writer.
    let back = std::fs::read_to_string(&cfg.out_path).expect("read back BENCH_lsm.json");
    for required in [
        "\"meta\"", "\"n_keys\"", "\"n_probes\"", "\"smoke\"", "\"kinds\"", "\"kind\"",
        "\"tables\"", "\"per_key\"", "\"batches\"", "\"batch\"", "\"mops\"",
        "\"block_reads\"", "\"probe_passes\"", "\"keys_probed\"",
        "\"policies\"", "\"policy\"", "\"block_writes\"", "\"write_amp\"",
        "\"read_amp\"", "\"space_amp\"", "\"used_bytes\"",
    ] {
        assert!(back.contains(required), "{} missing key {required}", cfg.out_path);
    }
    println!("wrote {} (schema check passed)", cfg.out_path);
}

fn main() {
    let cfg = config();
    let reports: Vec<KindReport> =
        kinds().iter().map(|&(filter, name)| bench_kind(&cfg, filter, name)).collect();
    enforce_gates(&reports);
    let leveled = bench_policy(&cfg, CompactionConfig::Leveled { fanout: 10 }, "leveled");
    let tiered = bench_policy(&cfg, CompactionConfig::Tiered { tiers_per_level: 3 }, "tiered");
    enforce_policy_gates(&leveled, &tiered);
    write_json(&cfg, &reports, &[leveled, tiered]);
}
