//! Robustness-tax baseline: what does checksummed block framing cost?
//!
//! Measures the exact production paths with the CRC32C frame on vs off —
//! static-stage (merge) build and uncached point reads through
//! `CompressedBTree`, plus the raw codec — and writes `BENCH_faults.json`
//! so later PRs can track the overhead. The unframed variants exist only
//! here; every production block stays framed.
//!
//! Run from the repo root: `cargo run -p memtree-bench --release --bin
//! bench_faults` (add a path argument to write the JSON elsewhere).

use memtree_bench::{mops, time};
use memtree_btree::CompressedBTree;
use memtree_common::traits::{OrderedIndex, StaticIndex, Value};
use memtree_compress::{compress, decode_block, decompress, encode_block};
use memtree_hybrid::{HybridCompressedBTree, MergeTrigger};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;
use std::time::Duration;

const N_KEYS: usize = 1_000_000;
const N_READS: usize = 200_000;
const RUNS: usize = 3;

fn entries() -> Vec<(Vec<u8>, Value)> {
    keys::sorted_unique(keys::rand_u64_keys(N_KEYS, 1))
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

/// Best-of-RUNS duration for `f` (min rejects scheduler noise).
fn best<F: FnMut()>(mut f: F) -> Duration {
    (0..RUNS).map(|_| time(|| f())).min().unwrap()
}

fn pct_overhead(on: f64, off: f64) -> f64 {
    (off / on - 1.0) * 100.0
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_faults.json".into());
    let e = entries();

    // Merge throughput: rebuilding the static stage IS the hybrid merge's
    // dominant cost; build it framed (production) and unframed (baseline).
    // One untimed build first so the allocator and page cache are warm for
    // whichever variant is measured first.
    std::hint::black_box(CompressedBTree::build(&e));
    let framed_build = best(|| {
        std::hint::black_box(CompressedBTree::build(&e));
    });
    let unframed_build = best(|| {
        std::hint::black_box(CompressedBTree::build_unframed(&e));
    });
    let build_on = mops(N_KEYS, framed_build);
    let build_off = mops(N_KEYS, unframed_build);
    println!(
        "merge build      checksums on {build_on:.2} Mkeys/s   off {build_off:.2} Mkeys/s   tax {:.1}%",
        pct_overhead(build_on, build_off)
    );

    // Uncached point reads: cache capacity 0 forces a block decode (and
    // frame validation when on) for every lookup — the worst-case read tax.
    let mut framed = CompressedBTree::build(&e);
    framed.set_cache_blocks(0);
    let mut unframed = CompressedBTree::build_unframed(&e);
    unframed.set_cache_blocks(0);
    let mut z = Zipfian::new(N_KEYS, 5);
    let picks: Vec<usize> = (0..N_READS).map(|_| z.next_scrambled()).collect();
    let read_framed = best(|| {
        let s: u64 = picks.iter().map(|&i| framed.get(&e[i].0).unwrap()).sum();
        std::hint::black_box(s);
    });
    let read_unframed = best(|| {
        let s: u64 = picks.iter().map(|&i| unframed.get(&e[i].0).unwrap()).sum();
        std::hint::black_box(s);
    });
    let read_on = mops(N_READS, read_framed);
    let read_off = mops(N_READS, read_unframed);
    println!(
        "uncached get     checksums on {read_on:.2} Mops/s    off {read_off:.2} Mops/s    tax {:.1}%",
        pct_overhead(read_on, read_off)
    );

    // Raw codec: frame+CRC vs bare LZ block, over many distinct leaf-sized
    // images (distinct inputs keep the pure calls inside the timing loop).
    let leaves: Vec<Vec<u8>> = e
        .chunks(4096)
        .take(64)
        .map(|c| c.iter().flat_map(|(k, _)| k.clone()).collect())
        .collect();
    let total_raw: usize = leaves.iter().map(Vec::len).sum();
    let enc_framed = best(|| {
        for leaf in &leaves {
            std::hint::black_box(encode_block(leaf));
        }
    });
    let enc_raw = best(|| {
        for leaf in &leaves {
            std::hint::black_box(compress(leaf));
        }
    });
    let blocks: Vec<Vec<u8>> = leaves.iter().map(|l| encode_block(l)).collect();
    let raw_blocks: Vec<Vec<u8>> = leaves.iter().map(|l| compress(l)).collect();
    let dec_framed = best(|| {
        for b in &blocks {
            std::hint::black_box(decode_block(b).unwrap());
        }
    });
    let dec_raw = best(|| {
        for b in &raw_blocks {
            std::hint::black_box(decompress(b).unwrap());
        }
    });
    let mbs = |d: Duration| total_raw as f64 / d.as_secs_f64() / 1e6;
    let (enc_on, enc_off) = (mbs(enc_framed), mbs(enc_raw));
    let (dec_on, dec_off) = (mbs(dec_framed), mbs(dec_raw));
    println!(
        "codec encode     checksums on {enc_on:.0} MB/s      off {enc_off:.0} MB/s      tax {:.1}%",
        pct_overhead(enc_on, enc_off)
    );
    println!(
        "codec decode     checksums on {dec_on:.0} MB/s      off {dec_off:.0} MB/s      tax {:.1}%",
        pct_overhead(dec_on, dec_off)
    );

    // End-to-end hybrid merge on the compressed static stage (checksums on
    // is the only production path; recorded for trend tracking).
    let merge = best(|| {
        let mut h = HybridCompressedBTree::with_config(MergeTrigger::Manual, false);
        for (k, v) in &e {
            h.insert(k, *v);
        }
        h.force_merge().unwrap();
        std::hint::black_box(h.static_len());
    });
    let merge_mkeys = mops(N_KEYS, merge);
    println!("hybrid merge e2e checksums on {merge_mkeys:.2} Mkeys/s (insert+merge, production path)");

    let json = format!(
        "{{\n  \"meta\": {{\n    \"n_keys\": {N_KEYS},\n    \"n_reads\": {N_READS},\n    \"runs\": {RUNS},\n    \"note\": \"robustness tax of CRC32C block framing; overhead_pct = (off/on - 1) * 100\"\n  }},\n  \"merge_build\": {{ \"on_mkeys_per_s\": {build_on:.3}, \"off_mkeys_per_s\": {build_off:.3}, \"overhead_pct\": {:.2} }},\n  \"uncached_point_get\": {{ \"on_mops_per_s\": {read_on:.3}, \"off_mops_per_s\": {read_off:.3}, \"overhead_pct\": {:.2} }},\n  \"codec_encode\": {{ \"on_mb_per_s\": {enc_on:.1}, \"off_mb_per_s\": {enc_off:.1}, \"overhead_pct\": {:.2} }},\n  \"codec_decode\": {{ \"on_mb_per_s\": {dec_on:.1}, \"off_mb_per_s\": {dec_off:.1}, \"overhead_pct\": {:.2} }},\n  \"hybrid_merge_end_to_end\": {{ \"on_mkeys_per_s\": {merge_mkeys:.3} }}\n}}\n",
        pct_overhead(build_on, build_off),
        pct_overhead(read_on, read_off),
        pct_overhead(enc_on, enc_off),
        pct_overhead(dec_on, dec_off),
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
