//! Robustness-cost benchmark, written to `BENCH_faults.json`.
//!
//! Four questions, all on exact production paths:
//!
//! 1. **What does checksummed block framing cost?** Static-stage (merge)
//!    build and uncached point reads through `CompressedBTree` with the
//!    CRC32C frame on vs off, plus the raw codec. The unframed variants
//!    exist only here; every production block stays framed.
//! 2. **How fast does scrub verify a database?** `Db::scrub` walks every
//!    manifest-live block plus the WAL and manifest; reported as GB/s of
//!    block data verified. Gate: an undamaged database scrubs fully clean.
//! 3. **What do degraded reads cost?** The same zipfian point-read
//!    workload against a healthy Bloom-filtered database and against the
//!    same database after latent corruption forced one table filterless —
//!    the read tax of graceful degradation.
//! 4. **Is `Enospc` recovery clean?** Fill to a capacity limit, verify the
//!    typed error, verify failing flushes leak nothing across attempts,
//!    then lift the limit and time the retry to success.
//!
//! Run from the repo root: `cargo run -p memtree-bench --release --bin
//! bench_faults` (`--smoke` for the CI-sized run, `--out PATH` to write
//! the JSON elsewhere).

use memtree_bench::{mops, time};
use memtree_btree::CompressedBTree;
use memtree_common::key::encode_u64;
use memtree_common::traits::{OrderedIndex, StaticIndex, Value};
use memtree_compress::{compress, decode_block, decompress, encode_block};
use memtree_hybrid::{HybridCompressedBTree, MergeTrigger};
use memtree_lsm::{Db, DbOptions, FilterKind};
use memtree_workload::keys;
use memtree_workload::zipf::Zipfian;
use std::time::Duration;

const RUNS: usize = 3;

struct Config {
    n_keys: usize,     // CRC-tax sections
    lsm_keys: usize,   // scrub / degraded / enospc sections
    n_reads: usize,
    out_path: String,
    smoke: bool,
}

fn config() -> Config {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument: {other} (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    Config {
        n_keys: if smoke { 100_000 } else { 1_000_000 },
        lsm_keys: if smoke { 20_000 } else { 120_000 },
        n_reads: if smoke { 40_000 } else { 200_000 },
        out_path: out.unwrap_or_else(|| {
            if smoke {
                "target/BENCH_faults_smoke.json".into()
            } else {
                "BENCH_faults.json".into()
            }
        }),
        smoke,
    }
}

fn entries(n: usize) -> Vec<(Vec<u8>, Value)> {
    keys::sorted_unique(keys::rand_u64_keys(n, 1))
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

/// Best-of-RUNS duration for `f` (min rejects scheduler noise).
fn best<F: FnMut()>(mut f: F) -> Duration {
    (0..RUNS).map(|_| time(&mut f)).min().unwrap()
}

fn pct_overhead(on: f64, off: f64) -> f64 {
    (off / on - 1.0) * 100.0
}

struct CrcTax {
    build_on: f64,
    build_off: f64,
    read_on: f64,
    read_off: f64,
    enc_on: f64,
    enc_off: f64,
    dec_on: f64,
    dec_off: f64,
    merge_mkeys: f64,
}

fn bench_crc_tax(cfg: &Config) -> CrcTax {
    let e = entries(cfg.n_keys);

    // Merge throughput: rebuilding the static stage IS the hybrid merge's
    // dominant cost; build it framed (production) and unframed (baseline).
    // One untimed build first so the allocator and page cache are warm for
    // whichever variant is measured first.
    std::hint::black_box(CompressedBTree::build(&e));
    let framed_build = best(|| {
        std::hint::black_box(CompressedBTree::build(&e));
    });
    let unframed_build = best(|| {
        std::hint::black_box(CompressedBTree::build_unframed(&e));
    });
    let build_on = mops(cfg.n_keys, framed_build);
    let build_off = mops(cfg.n_keys, unframed_build);
    println!(
        "merge build      checksums on {build_on:.2} Mkeys/s   off {build_off:.2} Mkeys/s   tax {:.1}%",
        pct_overhead(build_on, build_off)
    );

    // Uncached point reads: cache capacity 0 forces a block decode (and
    // frame validation when on) for every lookup — the worst-case read tax.
    let mut framed = CompressedBTree::build(&e);
    framed.set_cache_blocks(0);
    let mut unframed = CompressedBTree::build_unframed(&e);
    unframed.set_cache_blocks(0);
    let mut z = Zipfian::new(cfg.n_keys, 5);
    let picks: Vec<usize> = (0..cfg.n_reads).map(|_| z.next_scrambled()).collect();
    let read_framed = best(|| {
        let s: u64 = picks.iter().map(|&i| framed.get(&e[i].0).unwrap()).sum();
        std::hint::black_box(s);
    });
    let read_unframed = best(|| {
        let s: u64 = picks.iter().map(|&i| unframed.get(&e[i].0).unwrap()).sum();
        std::hint::black_box(s);
    });
    let read_on = mops(cfg.n_reads, read_framed);
    let read_off = mops(cfg.n_reads, read_unframed);
    println!(
        "uncached get     checksums on {read_on:.2} Mops/s    off {read_off:.2} Mops/s    tax {:.1}%",
        pct_overhead(read_on, read_off)
    );

    // Raw codec: frame+CRC vs bare LZ block, over many distinct leaf-sized
    // images (distinct inputs keep the pure calls inside the timing loop).
    let leaves: Vec<Vec<u8>> = e
        .chunks(4096)
        .take(64)
        .map(|c| c.iter().flat_map(|(k, _)| k.clone()).collect())
        .collect();
    let total_raw: usize = leaves.iter().map(Vec::len).sum();
    let enc_framed = best(|| {
        for leaf in &leaves {
            std::hint::black_box(encode_block(leaf));
        }
    });
    let enc_raw = best(|| {
        for leaf in &leaves {
            std::hint::black_box(compress(leaf));
        }
    });
    let blocks: Vec<Vec<u8>> = leaves.iter().map(|l| encode_block(l)).collect();
    let raw_blocks: Vec<Vec<u8>> = leaves.iter().map(|l| compress(l)).collect();
    let dec_framed = best(|| {
        for b in &blocks {
            std::hint::black_box(decode_block(b).unwrap());
        }
    });
    let dec_raw = best(|| {
        for b in &raw_blocks {
            std::hint::black_box(decompress(b).unwrap());
        }
    });
    let mbs = |d: Duration| total_raw as f64 / d.as_secs_f64() / 1e6;
    let (enc_on, enc_off) = (mbs(enc_framed), mbs(enc_raw));
    let (dec_on, dec_off) = (mbs(dec_framed), mbs(dec_raw));
    println!(
        "codec encode     checksums on {enc_on:.0} MB/s      off {enc_off:.0} MB/s      tax {:.1}%",
        pct_overhead(enc_on, enc_off)
    );
    println!(
        "codec decode     checksums on {dec_on:.0} MB/s      off {dec_off:.0} MB/s      tax {:.1}%",
        pct_overhead(dec_on, dec_off)
    );

    // End-to-end hybrid merge on the compressed static stage (checksums on
    // is the only production path; recorded for trend tracking).
    let merge = best(|| {
        let mut h = HybridCompressedBTree::with_config(MergeTrigger::Manual, false);
        for (k, v) in &e {
            h.insert(k, *v);
        }
        h.force_merge().unwrap();
        std::hint::black_box(h.static_len());
    });
    let merge_mkeys = mops(cfg.n_keys, merge);
    println!("hybrid merge e2e checksums on {merge_mkeys:.2} Mkeys/s (insert+merge, production path)");

    CrcTax { build_on, build_off, read_on, read_off, enc_on, enc_off, dec_on, dec_off, merge_mkeys }
}

fn key_of(i: u64) -> [u8; 8] {
    encode_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) // scattered inserts
}

const VALUE: &[u8] = b"ten-bytes!";

fn lsm_opts(filter: FilterKind) -> DbOptions {
    DbOptions {
        memtable_bytes: 64 << 10,
        filter,
        ..Default::default()
    }
}

fn build_lsm(n: usize, filter: FilterKind) -> Db {
    let mut db = Db::new(lsm_opts(filter));
    for i in 0..n as u64 {
        db.put(&key_of(i), VALUE).unwrap();
    }
    db.flush().unwrap();
    db
}

struct ScrubLine {
    gb_per_s: f64,
    blocks: u64,
    bytes: u64,
    ms: f64,
}

/// Scrub throughput over an undamaged database. Gate: fully clean.
fn bench_scrub(cfg: &Config) -> ScrubLine {
    let mut db = build_lsm(cfg.lsm_keys, FilterKind::None);
    let mut report = None;
    let elapsed = time(|| {
        report = Some(db.scrub().expect("scrub of a healthy database"));
    });
    let report = report.unwrap();
    assert!(
        report.is_clean(),
        "scrub of an undamaged database must be clean: {report:?}"
    );
    assert!(report.blocks_scanned > 0, "scrub scanned nothing");
    let line = ScrubLine {
        gb_per_s: report.bytes_scanned as f64 / elapsed.as_secs_f64() / 1e9,
        blocks: report.blocks_scanned,
        bytes: report.bytes_scanned,
        ms: elapsed.as_secs_f64() * 1e3,
    };
    println!(
        "scrub            {:.3} GB/s  ({} blocks, {} bytes, {:.2} ms, clean)",
        line.gb_per_s, line.blocks, line.bytes, line.ms
    );
    line
}

struct DegradedLine {
    healthy_mops: f64,
    degraded_mops: f64,
    tax_pct: f64,
    degraded_tables: u64,
}

/// Point-read throughput healthy vs with one table forced filterless by
/// latent corruption — the price of graceful degradation.
fn bench_degraded_reads(cfg: &Config) -> DegradedLine {
    let db = build_lsm(cfg.lsm_keys, FilterKind::Bloom(14.0));
    let disk = db.close().expect("clean close");
    let mut z = Zipfian::new(cfg.lsm_keys, 7);
    let picks: Vec<u64> = (0..cfg.n_reads).map(|_| z.next_scrambled() as u64).collect();

    let db = Db::open(disk.clone(), lsm_opts(FilterKind::Bloom(14.0))).expect("healthy reopen");
    assert_eq!(db.degraded_tables(), 0, "healthy database opened degraded");
    let filter_images = db.filter_block_ids();
    let healthy = best(|| {
        let mut hits = 0usize;
        for &i in &picks {
            hits += usize::from(db.get(&key_of(i)).is_some());
        }
        std::hint::black_box(hits);
    });
    drop(db);

    // Latent corruption that defeats the whole filter-recovery ladder:
    // rot every persisted filter image (so reopen must fall back to
    // rebuilding from data blocks) plus one data block (so at least one
    // rebuild fails). That table is quarantined and runs filterless —
    // a partial filter would lie.
    for &img in &filter_images {
        disk.bitrot_block(img, 42).expect("bitrot filter image");
    }
    let victim = (0..disk.block_slots() as u32)
        .find(|&id| disk.is_live(id) && !filter_images.contains(&id))
        .expect("no live data blocks");
    disk.bitrot_block(victim, 42).expect("bitrot");
    let db = Db::open(disk, lsm_opts(FilterKind::Bloom(14.0))).expect("degraded reopen");
    assert!(db.degraded_tables() > 0, "corruption did not degrade any table");
    let degraded = best(|| {
        let mut hits = 0usize;
        for &i in &picks {
            hits += usize::from(db.get(&key_of(i)).is_some());
        }
        std::hint::black_box(hits);
    });

    let line = DegradedLine {
        healthy_mops: mops(cfg.n_reads, healthy),
        degraded_mops: mops(cfg.n_reads, degraded),
        tax_pct: pct_overhead(mops(cfg.n_reads, healthy), mops(cfg.n_reads, degraded)).abs(),
        degraded_tables: db.degraded_tables(),
    };
    println!(
        "degraded reads   healthy {:.3} Mops/s   degraded {:.3} Mops/s   tax {:.1}%  ({} table filterless)",
        line.healthy_mops, line.degraded_mops, line.tax_pct, line.degraded_tables
    );
    line
}

struct EnospcLine {
    typed: bool,
    leak_free: bool,
    recovery_ms: f64,
}

/// Capacity exhaustion: typed error, leak-free failed flushes, timed
/// recovery after the limit lifts.
fn bench_enospc_recovery(cfg: &Config) -> EnospcLine {
    let mut db = build_lsm(cfg.lsm_keys / 4, FilterKind::None);
    let disk = db.disk_handle();
    disk.set_capacity_bytes(Some(disk.used_bytes() + 256));
    let mut typed = false;
    let mut i = (cfg.lsm_keys / 4) as u64;
    while !typed {
        i += 1;
        match db.put(&key_of(i), VALUE) {
            Ok(_) => {}
            Err(memtree_common::error::MemtreeError::Enospc { .. }) => typed = true,
            Err(e) => panic!("expected Enospc, got {e:?}"),
        }
    }
    // Failed flushes must release their partial blocks: space usage is
    // identical across attempts.
    let _ = db.flush();
    let used_a = disk.used_bytes();
    let _ = db.flush();
    let leak_free = disk.used_bytes() == used_a;
    assert!(leak_free, "failing flushes leak disk space");

    disk.set_capacity_bytes(None);
    let elapsed = time(|| {
        db.flush().expect("flush after capacity lift");
    });
    // Spot-check: nothing acknowledged was lost across the outage.
    for j in (0..i).step_by((i as usize / 64).max(1)) {
        assert_eq!(db.get(&key_of(j)).as_deref(), Some(VALUE), "record {j} lost to Enospc");
    }
    let line = EnospcLine { typed, leak_free, recovery_ms: elapsed.as_secs_f64() * 1e3 };
    println!(
        "enospc           typed error, leak-free retries, recovery {:.2} ms after lift",
        line.recovery_ms
    );
    line
}

/// Perf budgets for the checksum tax, enforced only on full (non-smoke)
/// runs with the hardware CRC kernel active: smoke sizes are noise-bound
/// and the scalar lane intentionally pays the portable-kernel price.
fn enforce_budgets(cfg: &Config, tax: &CrcTax) {
    let dec_pct = pct_overhead(tax.dec_on, tax.dec_off);
    let read_pct = pct_overhead(tax.read_on, tax.read_off);
    if cfg.smoke || memtree_common::crc::active_kernel() != "sse4.2-3way" {
        println!(
            "budgets          skipped (smoke={} kernel={}); decode tax {dec_pct:.1}%, read tax {read_pct:.1}%",
            cfg.smoke,
            memtree_common::crc::active_kernel()
        );
        return;
    }
    assert!(
        dec_pct <= 150.0,
        "codec_decode.overhead_pct budget blown: {dec_pct:.1}% > 150% \
         (fused verify+decode with the sse4.2-3way kernel should keep the \
         checksum tax within 2.5x of the bare codec)"
    );
    assert!(
        read_pct <= 40.0,
        "uncached_point_get.overhead_pct budget blown: {read_pct:.1}% > 40%"
    );
    println!("budgets          decode tax {dec_pct:.1}% <= 150%, uncached read tax {read_pct:.1}% <= 40%");
}

fn write_json(
    cfg: &Config,
    tax: &CrcTax,
    scrub: &ScrubLine,
    degraded: &DegradedLine,
    enospc: &EnospcLine,
) {
    let kernel_mode = match memtree_common::kernel_mode() {
        memtree_common::KernelMode::Auto => "auto",
        memtree_common::KernelMode::Scalar => "scalar",
    };
    let json = format!(
        "{{\n  \"meta\": {{\n    \"n_keys\": {},\n    \"lsm_keys\": {},\n    \"n_reads\": {},\n    \"runs\": {RUNS},\n    \"smoke\": {},\n    \"kernel_mode\": \"{kernel_mode}\",\n    \"crc_kernel\": \"{}\",\n    \"note\": \"robustness costs: CRC32C framing tax, scrub throughput, degraded-read tax, Enospc recovery; overhead_pct = (off/on - 1) * 100\"\n  }},\n  \"merge_build\": {{ \"on_mkeys_per_s\": {:.3}, \"off_mkeys_per_s\": {:.3}, \"overhead_pct\": {:.2} }},\n  \"uncached_point_get\": {{ \"on_mops_per_s\": {:.3}, \"off_mops_per_s\": {:.3}, \"overhead_pct\": {:.2} }},\n  \"codec_encode\": {{ \"on_mb_per_s\": {:.1}, \"off_mb_per_s\": {:.1}, \"overhead_pct\": {:.2} }},\n  \"codec_decode\": {{ \"on_mb_per_s\": {:.1}, \"off_mb_per_s\": {:.1}, \"overhead_pct\": {:.2} }},\n  \"hybrid_merge_end_to_end\": {{ \"on_mkeys_per_s\": {:.3} }},\n  \"scrub_gb_per_s\": {:.4},\n  \"scrub_detail\": {{ \"blocks_scanned\": {}, \"bytes_scanned\": {}, \"elapsed_ms\": {:.3}, \"clean\": true }},\n  \"degraded_read_tax_pct\": {:.2},\n  \"degraded_read_detail\": {{ \"healthy_mops_per_s\": {:.3}, \"degraded_mops_per_s\": {:.3}, \"degraded_tables\": {} }},\n  \"enospc_recovery\": {{ \"typed_error\": {}, \"leak_free_retries\": {}, \"recovery_ms\": {:.3} }}\n}}\n",
        cfg.n_keys,
        cfg.lsm_keys,
        cfg.n_reads,
        cfg.smoke,
        memtree_common::crc::active_kernel(),
        tax.build_on,
        tax.build_off,
        pct_overhead(tax.build_on, tax.build_off),
        tax.read_on,
        tax.read_off,
        pct_overhead(tax.read_on, tax.read_off),
        tax.enc_on,
        tax.enc_off,
        pct_overhead(tax.enc_on, tax.enc_off),
        tax.dec_on,
        tax.dec_off,
        pct_overhead(tax.dec_on, tax.dec_off),
        tax.merge_mkeys,
        scrub.gb_per_s,
        scrub.blocks,
        scrub.bytes,
        scrub.ms,
        degraded.tax_pct,
        degraded.healthy_mops,
        degraded.degraded_mops,
        degraded.degraded_tables,
        enospc.typed,
        enospc.leak_free,
        enospc.recovery_ms,
    );
    if let Some(dir) = std::path::Path::new(&cfg.out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&cfg.out_path, &json) {
        eprintln!("error: cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    }
    // Schema self-check: every key the downstream tooling greps for.
    let back = std::fs::read_to_string(&cfg.out_path).expect("read back BENCH_faults.json");
    for required in [
        "\"meta\"", "\"n_keys\"", "\"smoke\"", "\"kernel_mode\"", "\"crc_kernel\"",
        "\"merge_build\"", "\"uncached_point_get\"",
        "\"codec_encode\"", "\"codec_decode\"", "\"hybrid_merge_end_to_end\"",
        "\"scrub_gb_per_s\"", "\"scrub_detail\"", "\"blocks_scanned\"", "\"bytes_scanned\"",
        "\"degraded_read_tax_pct\"", "\"degraded_read_detail\"", "\"degraded_tables\"",
        "\"enospc_recovery\"", "\"typed_error\"", "\"leak_free_retries\"", "\"recovery_ms\"",
    ] {
        assert!(back.contains(required), "{} missing key {required}", cfg.out_path);
    }
    println!("wrote {} (schema check passed)", cfg.out_path);
}

fn main() {
    let cfg = config();
    let tax = bench_crc_tax(&cfg);
    let scrub = bench_scrub(&cfg);
    let degraded = bench_degraded_reads(&cfg);
    let enospc = bench_enospc_recovery(&cfg);
    enforce_budgets(&cfg, &tax);
    write_json(&cfg, &tax, &scrub, &degraded, &enospc);
}
