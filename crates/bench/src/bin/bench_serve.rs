//! Multi-threaded serving benchmark over `ShardedDb`, written to
//! `BENCH_serve.json`.
//!
//! A closed-loop YCSB driver runs 1/2/4/8 client threads against one
//! sharded database: read-heavy (B) under uniform and Zipfian key
//! choice, write-heavy (A), and scan/insert (E). Every operation is
//! individually timed, so each line reports aggregate throughput *and*
//! tail latency (p50/p99) — the serving numbers that matter, not just a
//! mean.
//!
//! Correctness gates always run, smoke mode included: every client
//! thread's acknowledged writes are re-read after a quiesce barrier, and
//! reads during the storm must return plausible values (the loaded value
//! or a client's overwrite, never garbage). The reader-scaling gate —
//! uniform read-heavy throughput at 4 threads must reach 2.5x the
//! 1-thread run — is enforced only when the host actually has 4 cores
//! (`std::thread::available_parallelism`); the JSON records whether it
//! was enforced so a single-core run is never mistaken for a passing
//! scaling result.
//!
//! Run from the repo root:
//! `cargo run -p memtree-bench --release --bin bench_serve`

use memtree_lsm::{DbOptions, SlowIo, StallConfig};
use memtree_serve::{ServeOptions, ShardedDb};
use memtree_workload::ycsb::{Dist, Mix, Op, OpGenerator};
use std::sync::Arc;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    loaded: usize,
    ops_per_thread: usize,
    out_path: String,
    smoke: bool,
}

fn config() -> Config {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument: {other} (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    Config {
        loaded: if smoke { 2_000 } else { 20_000 },
        ops_per_thread: if smoke { 1_500 } else { 15_000 },
        out_path: out.unwrap_or_else(|| {
            if smoke {
                "target/BENCH_serve_smoke.json".into()
            } else {
                "BENCH_serve.json".into()
            }
        }),
        smoke,
    }
}

fn loaded_key(i: usize) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

fn reserve_key(i: usize) -> Vec<u8> {
    format!("zres{i:08}").into_bytes()
}

fn loaded_value(i: usize) -> Vec<u8> {
    format!("base-{i:08}-payload").into_bytes()
}

fn updated_value(thread: usize, i: usize) -> Vec<u8> {
    format!("upd{thread}-{i:08}-payload").into_bytes()
}

/// A value for loaded key `i` is plausible iff it is the load-phase
/// value or some client's overwrite of exactly that key.
fn plausible(i: usize, v: &[u8]) -> bool {
    let suffix = format!("-{i:08}-payload");
    v.ends_with(suffix.as_bytes()) && (v.starts_with(b"base-") || v.starts_with(b"upd"))
}

struct Line {
    threads: usize,
    mops: f64,
    p50_us: f64,
    p99_us: f64,
}

struct ConfigReport {
    name: &'static str,
    lines: Vec<Line>,
}

fn fresh_db(cfg: &Config) -> Arc<ShardedDb> {
    let sdb = ShardedDb::new(ServeOptions {
        shards: 4,
        db: DbOptions {
            memtable_bytes: 256 << 10,
            ..DbOptions::default()
        },
        ..ServeOptions::default()
    });
    for i in 0..cfg.loaded {
        sdb.put(&loaded_key(i), &loaded_value(i)).unwrap();
    }
    sdb.barrier().unwrap();
    Arc::new(sdb)
}

/// One (mix, dist, threads) cell: spawn the clients, drive `ops` each,
/// time every operation, and gate the answers as we go.
fn run_cell(
    sdb: &Arc<ShardedDb>,
    mix: Mix,
    dist: Dist,
    threads: usize,
    ops: usize,
    loaded: usize,
) -> Line {
    let started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let sdb = Arc::clone(sdb);
            std::thread::spawn(move || {
                let mut gen = OpGenerator::with_dist(mix, loaded, 0x5eed + t as u64, dist);
                let mut lat = Vec::with_capacity(ops);
                let mut written: Vec<(usize, usize)> = Vec::new();
                for _ in 0..ops {
                    let op = gen.next();
                    let op_start = Instant::now();
                    match op {
                        Op::Read(i) => {
                            if let Some(v) = sdb.get(&loaded_key(i)) {
                                assert!(plausible(i, &v), "implausible value for key {i}");
                            } else {
                                panic!("loaded key {i} missing during storm");
                            }
                        }
                        Op::Update(i) => {
                            sdb.put(&loaded_key(i), &updated_value(t, i)).unwrap();
                            written.push((t, i));
                        }
                        Op::Insert(i) => {
                            sdb.put(&reserve_key(i), &updated_value(t, i)).unwrap();
                        }
                        Op::Scan(i, len) => {
                            let got = sdb.scan(&loaded_key(i), None, len);
                            assert!(got.len() <= len, "scan overshot its limit");
                        }
                    }
                    lat.push(op_start.elapsed().as_nanos() as u64);
                }
                (lat, written)
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(threads * ops);
    let mut written = Vec::new();
    for w in workers {
        let (l, wr) = w.join().unwrap();
        lat.extend(l);
        written.extend(wr);
    }
    let elapsed = started.elapsed();

    // Gate: after a quiesce barrier, each client's last overwrite per key
    // is *a* plausible overwrite of that key (clients race, so exact
    // last-writer is undefined across threads — plausibility is not).
    sdb.barrier().unwrap();
    for &(_, i) in written.iter().rev().take(64) {
        let v = sdb.get(&loaded_key(i)).unwrap_or_else(|| panic!("acked update to {i} lost"));
        assert!(plausible(i, &v), "post-quiesce value for key {i} implausible");
    }

    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    Line {
        threads,
        mops: (threads * ops) as f64 / elapsed.as_secs_f64() / 1e6,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

fn run_config(
    cfg: &Config,
    name: &'static str,
    mix: Mix,
    dist: Dist,
) -> ConfigReport {
    // Scans merge 50-100 entries per op; keep their op count proportionate.
    let ops = if mix == Mix::E { cfg.ops_per_thread / 10 } else { cfg.ops_per_thread };
    let mut lines = Vec::new();
    for &threads in &THREADS {
        let sdb = fresh_db(cfg);
        let line = run_cell(&sdb, mix, dist, threads, ops, cfg.loaded);
        println!(
            "{name:<20} {threads} thread{} {:>8.3} Mops/s   p50 {:>7.1} us   p99 {:>7.1} us",
            if threads == 1 { " " } else { "s" },
            line.mops,
            line.p50_us,
            line.p99_us
        );
        lines.push(line);
        Arc::try_unwrap(sdb).ok().expect("clients joined").close().unwrap();
    }
    ConfigReport { name, lines }
}

/// The reader-scaling gate only means something with real cores under
/// it; on a 1-core host every extra thread is pure context switching.
fn scaling_gate(reports: &[ConfigReport], enforced: bool) {
    let uniform = reports
        .iter()
        .find(|r| r.name == "read_heavy_uniform")
        .expect("uniform read-heavy config missing");
    let at = |t: usize| {
        uniform
            .lines
            .iter()
            .find(|l| l.threads == t)
            .expect("thread count missing")
            .mops
    };
    let ratio = at(4) / at(1);
    if enforced {
        assert!(
            ratio >= 2.5,
            "reader scaling gate: uniform read-heavy 1->4 threads must reach \
             2.5x, got {ratio:.2}x ({:.3} -> {:.3} Mops/s)",
            at(1),
            at(4)
        );
        println!("scaling gate       1->4 threads {ratio:.2}x >= 2.5x (enforced)");
    } else {
        println!("scaling gate       1->4 threads {ratio:.2}x (not enforced: <4 cores)");
    }
}

/// Results of the three overload sections (see `run_overload`); every
/// field lands in the JSON and several are gated.
struct OverloadReport {
    stall_writes: usize,
    backpressure_rejections: u64,
    stall_rejections: u64,
    compact_steps: u64,
    overload_retries: u64,
    shed_attempts: usize,
    shed: u64,
    shed_rate: f64,
    max_queue_depth: u64,
    queue_depth_limit: usize,
    slow_ops: usize,
    p50_virtual_us: u64,
    p99_under_slow_io_us: u64,
    slow_io_delay_us: u64,
}

/// Section 1 — write stalls: bands armed tighter than the compaction
/// trigger force typed `Backpressure`/`Stalled` rejections that the
/// serve layer retries (with debt drains) until every write lands.
/// Gated: the engine must actually have rejected, and the retries must
/// actually have run.
fn run_stall_section(cfg: &Config) -> (usize, u64, u64, u64, u64) {
    let sdb = Arc::new(ShardedDb::new(ServeOptions {
        shards: 2,
        db: DbOptions {
            memtable_bytes: 2 << 10,
            ..DbOptions::default()
        },
        // The memtable stop band sits *below* the flush threshold, so the
        // gate is scheduling-independent: nothing drains a memtable except
        // the write path or an explicit flush, so every crossing of the
        // band must reject a write with a typed `Stalled` that the serve
        // layer relieves (flush), retries, and lands. The L0 band at 1 run
        // additionally converts compaction lag into `Backpressure` that
        // the relief's compact_debt drains.
        stall: Some(StallConfig {
            slowdown_l0_runs: 1,
            stop_l0_runs: 4,
            slowdown_memtable_bytes: 1 << 10,
            stop_memtable_bytes: 1 << 10,
        }),
        retry_attempts: 64,
        ..ServeOptions::default()
    }));
    let writes = if cfg.smoke { 600 } else { 4_000 };
    let threads = 8usize;
    let per_thread = writes / threads;
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let sdb = Arc::clone(&sdb);
            std::thread::spawn(move || {
                for i in (t * per_thread)..((t + 1) * per_thread) {
                    sdb.put(&loaded_key(i), &loaded_value(i)).unwrap_or_else(|e| {
                        panic!("stall section: write {i} exhausted retries: {e:?}")
                    });
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let sdb = Arc::try_unwrap(sdb).ok().expect("writers joined");
    sdb.barrier().unwrap();
    let stats = sdb.stats();
    let db_stats = sdb.shard_db_stats().unwrap();
    let (mut bp, mut st, mut steps) = (0u64, 0u64, 0u64);
    for s in &db_stats {
        bp += s.backpressure_rejections;
        st += s.stall_rejections;
        steps += s.compact_steps;
    }
    assert!(
        bp + st > 0,
        "stall gate: bands this tight must reject at least once ({db_stats:?})"
    );
    assert!(
        stats.overload_retries > 0,
        "stall gate: rejected writes must have been retried ({stats:?})"
    );
    // Spot-check: rejected-then-retried writes still all landed.
    for i in (0..writes).step_by(97) {
        assert_eq!(
            sdb.get(&loaded_key(i)),
            Some(loaded_value(i)),
            "stall gate: acked write {i} lost under backpressure"
        );
    }
    sdb.close().unwrap();
    (writes, bp, st, steps, stats.overload_retries)
}

/// Section 2 — admission control: more clients than queue slots under a
/// seeded slow-I/O storm. Gated: some requests must have been shed at
/// admission, and the queue depth must stay bounded (shedding, not
/// buffering, absorbs the overload).
fn run_shed_section(cfg: &Config) -> (usize, u64, f64, u64, usize) {
    let queue_depth = 2usize;
    let threads = 8usize;
    let per_thread = if cfg.smoke { 300 } else { 2_000 };
    let sdb = Arc::new(ShardedDb::new(ServeOptions {
        shards: 2,
        queue_depth,
        retry_attempts: 64,
        db: DbOptions {
            memtable_bytes: 4 << 10,
            ..DbOptions::default()
        },
        ..ServeOptions::default()
    }));
    sdb.disk_handle().set_slow_io(Some(SlowIo::storm(0xBEEF)));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let sdb = Arc::clone(&sdb);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let k = format!("shed{t}-{i:06}").into_bytes();
                    sdb.put(&k, b"overload-payload").unwrap_or_else(|e| {
                        panic!("shed section: write {t}/{i} exhausted retries: {e:?}")
                    });
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = sdb.stats();
    let attempts = threads * per_thread;
    let shed_rate = stats.shed as f64 / attempts as f64;
    assert!(
        stats.shed > 0,
        "shed gate: {threads} clients against {queue_depth} queue slots must shed ({stats:?})"
    );
    let bound = queue_depth + threads;
    assert!(
        stats.max_queue_depth <= bound,
        "shed gate: queue depth {} exceeded bound {bound} — admission control leaked",
        stats.max_queue_depth
    );
    sdb.disk_handle().set_slow_io(None);
    let stats_depth = stats.max_queue_depth as u64;
    Arc::try_unwrap(sdb).ok().expect("clients joined").close().unwrap();
    (attempts, stats.shed, shed_rate, stats_depth, queue_depth)
}

/// Section 3 — tail latency under a slow-I/O storm, measured on the
/// virtual disk clock (the same clock deadlines run on). Gated: the
/// storm must actually have delayed I/O, and p99 must come out finite.
fn run_slow_io_section(cfg: &Config) -> (usize, u64, u64, u64) {
    let sdb = ShardedDb::new(ServeOptions {
        shards: 2,
        db: DbOptions {
            memtable_bytes: 64 << 10,
            cache_blocks: 16,
            ..DbOptions::default()
        },
        ..ServeOptions::default()
    });
    let loaded = if cfg.smoke { 1_000 } else { 6_000 };
    for i in 0..loaded {
        sdb.put(&loaded_key(i), &loaded_value(i)).unwrap();
    }
    sdb.flush_all().unwrap();
    sdb.barrier().unwrap();
    let disk = sdb.disk_handle();
    let delay_before = disk.stats().slow_io_delay_us;
    disk.set_slow_io(Some(SlowIo::storm(0x570a)));
    let ops = if cfg.smoke { 400 } else { 3_000 };
    let mut lat = Vec::with_capacity(ops);
    let mut state = 0x5eed_u64;
    for i in 0..ops {
        let k = loaded_key((memtree_common::hash::splitmix64(&mut state) % loaded as u64) as usize);
        let t0 = disk.now_us();
        if i % 4 == 0 {
            sdb.put(&k, b"storm-overwrite-payload").unwrap();
        } else {
            sdb.get_fresh(&k).unwrap();
        }
        lat.push(disk.now_us().saturating_sub(t0));
    }
    let delayed = disk.stats().slow_io_delay_us - delay_before;
    assert!(delayed > 0, "slow-io gate: the storm never delayed an I/O");
    disk.set_slow_io(None);
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    assert!(
        p99 < 60_000_000,
        "slow-io gate: p99 {p99} virtual us is not a finite tail — requests wedged"
    );
    sdb.close().unwrap();
    (ops, p50, p99, delayed)
}

fn run_overload(cfg: &Config) -> OverloadReport {
    let (stall_writes, bp, st, steps, retries) = run_stall_section(cfg);
    println!(
        "stall               {stall_writes} writes: {bp} backpressure + {st} stalled \
         rejections, {steps} drain steps, {retries} transparent retries"
    );
    let (attempts, shed, shed_rate, max_depth, limit) = run_shed_section(cfg);
    println!(
        "shed                {attempts} attempts: {shed} shed ({:.2}%), max queue depth \
         {max_depth} (limit {limit})",
        shed_rate * 100.0
    );
    let (ops, p50, p99, delayed) = run_slow_io_section(cfg);
    println!(
        "slow-io storm       {ops} ops: p50 {p50} / p99 {p99} virtual us \
         ({delayed} us of injected delay)"
    );
    OverloadReport {
        stall_writes,
        backpressure_rejections: bp,
        stall_rejections: st,
        compact_steps: steps,
        overload_retries: retries,
        shed_attempts: attempts,
        shed,
        shed_rate,
        max_queue_depth: max_depth,
        queue_depth_limit: limit,
        slow_ops: ops,
        p50_virtual_us: p50,
        p99_under_slow_io_us: p99,
        slow_io_delay_us: delayed,
    }
}

fn write_json(
    cfg: &Config,
    reports: &[ConfigReport],
    overload: &OverloadReport,
    parallelism: usize,
    enforced: bool,
) {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\n    \"loaded\": {},\n    \"ops_per_thread\": {},\n    \"smoke\": {},\n    \"shards\": 4,\n    \"parallelism\": {},\n    \"scaling_gate_enforced\": {},\n    \"note\": \"closed-loop YCSB clients over ShardedDb; every op timed for p50/p99; scaling gate (1->4 threads >= 2.5x on uniform read-heavy) enforced only with >= 4 cores\"\n  }},\n",
        cfg.loaded, cfg.ops_per_thread, cfg.smoke, parallelism, enforced
    ));
    json.push_str("  \"configs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!("    {{\n      \"config\": \"{}\",\n      \"lines\": [\n", r.name));
        for (j, l) in r.lines.iter().enumerate() {
            json.push_str(&format!(
                "        {{ \"threads\": {}, \"mops\": {:.4}, \"p50_us\": {:.2}, \"p99_us\": {:.2} }}{}\n",
                l.threads, l.mops, l.p50_us, l.p99_us,
                if j + 1 < r.lines.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("      ]\n    }}{}\n", if i + 1 < reports.len() { "," } else { "" }));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"stall\": {{\n    \"writes\": {},\n    \"backpressure_rejections\": {},\n    \"stall_rejections\": {},\n    \"compact_steps\": {},\n    \"overload_retries\": {}\n  }},\n",
        overload.stall_writes,
        overload.backpressure_rejections,
        overload.stall_rejections,
        overload.compact_steps,
        overload.overload_retries
    ));
    json.push_str(&format!(
        "  \"shed\": {{\n    \"attempts\": {},\n    \"shed\": {},\n    \"shed_rate\": {:.6},\n    \"max_queue_depth\": {},\n    \"queue_depth_limit\": {}\n  }},\n",
        overload.shed_attempts,
        overload.shed,
        overload.shed_rate,
        overload.max_queue_depth,
        overload.queue_depth_limit
    ));
    json.push_str(&format!(
        "  \"slow_io\": {{\n    \"ops\": {},\n    \"p50_virtual_us\": {},\n    \"p99_under_slow_io\": {},\n    \"slow_io_delay_us\": {}\n  }}\n",
        overload.slow_ops,
        overload.p50_virtual_us,
        overload.p99_under_slow_io_us,
        overload.slow_io_delay_us
    ));
    json.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&cfg.out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&cfg.out_path, json) {
        eprintln!("error: cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    }
    // Schema self-check: read the artifact back and require every key the
    // downstream tooling greps for.
    let back = std::fs::read_to_string(&cfg.out_path).expect("read back BENCH_serve.json");
    for required in [
        "\"meta\"", "\"loaded\"", "\"ops_per_thread\"", "\"smoke\"", "\"shards\"",
        "\"parallelism\"", "\"scaling_gate_enforced\"", "\"configs\"", "\"config\"",
        "\"lines\"", "\"threads\"", "\"mops\"", "\"p50_us\"", "\"p99_us\"",
        "\"stall\"", "\"backpressure_rejections\"", "\"stall_rejections\"",
        "\"compact_steps\"", "\"overload_retries\"", "\"shed\"", "\"shed_rate\"",
        "\"max_queue_depth\"", "\"slow_io\"", "\"p99_under_slow_io\"",
        "\"slow_io_delay_us\"",
    ] {
        assert!(back.contains(required), "{} missing key {required}", cfg.out_path);
    }
    println!("wrote {} (schema check passed)", cfg.out_path);
}

fn main() {
    let cfg = config();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforced = parallelism >= 4 && !cfg.smoke;
    let reports = vec![
        run_config(&cfg, "read_heavy_uniform", Mix::B, Dist::Uniform),
        run_config(&cfg, "read_heavy_zipfian", Mix::B, Dist::Zipfian),
        run_config(&cfg, "write_heavy_zipfian", Mix::A, Dist::Zipfian),
        run_config(&cfg, "scan_insert_zipfian", Mix::E, Dist::Zipfian),
    ];
    scaling_gate(&reports, enforced);
    let overload = run_overload(&cfg);
    write_json(&cfg, &reports, &overload, parallelism, enforced);
}
