//! `repro` — regenerate any table or figure of the thesis evaluation.
//!
//! ```sh
//! repro list                 # show every experiment id
//! repro fig3_4               # run one at standard scale
//! repro fig3_4 --quick       # run one at quick scale
//! repro all --quick          # run everything (EXPERIMENTS.md was made so)
//! ```

use memtree_bench::experiments::registry;
use memtree_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale = if quick { Scale::quick() } else { Scale::standard() };

    let registry = registry();
    if ids.is_empty() || ids[0] == "list" {
        println!("experiments ({}):", registry.len());
        for (id, desc, _) in &registry {
            println!("  {id:<10} {desc}");
        }
        println!("\nusage: repro <id>|all [--quick]");
        return;
    }
    if ids[0] == "all" {
        let started = std::time::Instant::now();
        for (id, _, run) in &registry {
            let t = std::time::Instant::now();
            run(scale);
            eprintln!("[{}] done in {:.1}s", id, t.elapsed().as_secs_f64());
        }
        eprintln!("all experiments done in {:.0}s", started.elapsed().as_secs_f64());
        return;
    }
    for id in ids {
        match registry.iter().find(|(eid, _, _)| eid == id) {
            Some((_, _, run)) => run(scale),
            None => {
                eprintln!("unknown experiment `{id}` — `repro list` shows ids");
                std::process::exit(1);
            }
        }
    }
}
