//! Durability-cost benchmark, written to `BENCH_recovery.json`.
//!
//! Three questions, all answered with the simulator's exact counters plus
//! wall-clock time:
//!
//! 1. **What does the WAL cost on the write path?** The same insert
//!    workload runs with the WAL off and with group commit 1 / 8 / 64.
//!    Reported: throughput, sync barriers, WAL bytes, and write
//!    amplification (WAL bytes per logical byte — the CRC frame and key
//!    length add a fixed overhead per record).
//! 2. **What does recovery cost?** For each filter kind the same database
//!    is closed cleanly and reopened; recovery time and the block reads
//!    paid to restore filters are reported. Filters persist as one image
//!    block per table, so a clean reopen loads every filter in **O(tables)
//!    meta-sized reads** instead of re-scanning every data block — gated
//!    at `block_reads ≤ 2 × tables`, with every image accounted for.
//! 3. **What survives a crash?** Deterministic gates, enforced in smoke
//!    mode too: a clean shutdown replays **zero** WAL records, and a torn
//!    power-loss recovery loses **only the unsynced suffix** (< one group
//!    commit window), never an acknowledged record.
//!
//! Run from the repo root:
//! `cargo run -p memtree-bench --release --bin bench_recovery`

use memtree_bench::{mops, time};
use memtree_common::key::encode_u64;
use memtree_lsm::{Db, DbOptions, FilterKind};

struct Config {
    n_keys: usize,
    out_path: String,
    smoke: bool,
}

fn config() -> Config {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument: {other} (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    Config {
        n_keys: if smoke { 20_000 } else { 120_000 },
        out_path: out.unwrap_or_else(|| {
            if smoke {
                "target/BENCH_recovery_smoke.json".into()
            } else {
                "BENCH_recovery.json".into()
            }
        }),
        smoke,
    }
}

fn key_of(i: u64) -> [u8; 8] {
    encode_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) // scattered inserts
}

const VALUE: &[u8] = b"ten-bytes!";

fn opts(filter: FilterKind, wal: bool, group: usize) -> DbOptions {
    DbOptions {
        memtable_bytes: 64 << 10,
        filter,
        wal,
        wal_group_commit: group,
        ..Default::default()
    }
}

struct WalLine {
    name: &'static str,
    wal: bool,
    group: usize,
    mops: f64,
    syncs: u64,
    wal_bytes: u64,
    logical_bytes: u64,
    write_amp: f64,
}

/// The same insert workload under each durability setting.
fn bench_wal_overhead(cfg: &Config) -> Vec<WalLine> {
    let configs: [(&'static str, bool, usize); 4] = [
        ("wal_off", false, 1),
        ("group_1", true, 1),
        ("group_8", true, 8),
        ("group_64", true, 64),
    ];
    let mut lines = Vec::new();
    for (name, wal, group) in configs {
        let mut db = Db::new(opts(FilterKind::None, wal, group));
        let elapsed = time(|| {
            for i in 0..cfg.n_keys as u64 {
                db.put(&key_of(i), VALUE).unwrap();
            }
        });
        let rate = mops(cfg.n_keys, elapsed);
        let w = db.wal_stats();
        let logical = (cfg.n_keys * (8 + VALUE.len())) as u64;
        let line = WalLine {
            name,
            wal,
            group,
            mops: rate,
            syncs: db.io_stats().syncs,
            wal_bytes: w.appended_bytes,
            logical_bytes: logical,
            write_amp: w.appended_bytes as f64 / logical as f64,
        };
        println!(
            "{name:<9} {:>8.3} Mops/s  {:>8} syncs  {:>9} WAL bytes  amp {:.2}",
            line.mops, line.syncs, line.wal_bytes, line.write_amp
        );
        lines.push(line);
    }
    lines
}

struct RecoveryLine {
    kind: &'static str,
    open_ms: f64,
    replayed: u64,
    block_reads: u64,
    tables: u64,
    filters_loaded: u64,
}

/// Clean-shutdown recovery cost per filter kind. Persistent filter
/// images make this O(tables): the gate holds reopen to at most two
/// block reads per table (the filter image, plus slack for an index
/// probe) and requires every filter to come from its image, none from a
/// data-block rebuild.
fn bench_recovery_time(cfg: &Config) -> Vec<RecoveryLine> {
    let kinds: [(FilterKind, &'static str); 3] = [
        (FilterKind::None, "none"),
        (FilterKind::Bloom(14.0), "bloom14"),
        (FilterKind::SurfReal(8), "surf_real8"),
    ];
    let mut lines = Vec::new();
    for (filter, kind) in kinds {
        let o = opts(filter, true, 8);
        let mut db = Db::new(o.clone());
        for i in 0..cfg.n_keys as u64 {
            db.put(&key_of(i), VALUE).unwrap();
        }
        let disk = db.close().expect("clean close");
        disk.reset_stats();
        let mut reopened = None;
        let elapsed = time(|| {
            reopened = Some(Db::open(disk.clone(), o.clone()).expect("clean reopen"));
        });
        let db = reopened.unwrap();
        let w = db.wal_stats();
        assert_eq!(
            w.replayed_records, 0,
            "{kind}: clean shutdown must replay zero WAL records"
        );
        let tables: usize = db.level_sizes().iter().sum();
        let block_reads = db.io_stats().block_reads;
        assert!(
            block_reads <= 2 * tables as u64,
            "{kind}: reopen read {block_reads} blocks for {tables} tables — \
             persistent filter images should make recovery O(tables)"
        );
        if !matches!(filter, FilterKind::None) {
            assert_eq!(
                db.filters_loaded() as usize, tables,
                "{kind}: every filter should load from its persisted image"
            );
            assert_eq!(db.filters_rebuilt(), 0, "{kind}: no filter should need a data-block rebuild");
        }
        let line = RecoveryLine {
            kind,
            open_ms: elapsed.as_secs_f64() * 1e3,
            replayed: w.replayed_records,
            block_reads,
            tables: tables as u64,
            filters_loaded: db.filters_loaded(),
        };
        println!(
            "recover {kind:<11} {:>8.2} ms  {:>3} replayed  {:>7} block reads  ({} tables, {} filters from images)",
            line.open_ms, line.replayed, line.block_reads, line.tables, line.filters_loaded
        );
        lines.push(line);
    }
    lines
}

struct TornReport {
    group: usize,
    issued: u64,
    acked: u64,
    recovered: u64,
    lost: u64,
    replayed: u64,
    torn_truncated: u64,
}

/// Power loss mid-workload with a torn final write: the acknowledged
/// prefix must survive, and only the unsynced suffix may be lost.
fn bench_torn_tail() -> TornReport {
    let group = 8usize;
    // Large memtable: everything rides on the WAL, nothing is flushed —
    // the hardest case for recovery.
    let o = DbOptions {
        memtable_bytes: 1 << 22,
        wal_group_commit: group,
        ..Default::default()
    };
    let issued = 10_001u64; // deliberately not a multiple of the group
    let mut db = Db::new(o.clone());
    for i in 0..issued {
        db.put(&key_of(i), VALUE).unwrap();
    }
    let acked = db.last_synced_seq();
    let disk = db.disk_handle();
    drop(db);
    disk.crash(Some(0xC0FFEE)); // tear the in-flight tail append

    let db = Db::open(disk, o).expect("torn-tail recovery");
    let recovered = db.last_seq();
    let w = db.wal_stats();
    assert!(
        recovered >= acked && recovered <= issued,
        "recovered {recovered} outside [acked {acked}, issued {issued}]"
    );
    let lost = issued - recovered;
    assert!(
        (lost as usize) < group,
        "lost {lost} records — more than one group-commit window ({group})"
    );
    for i in 0..recovered {
        assert_eq!(
            db.get(&key_of(i)).as_deref(),
            Some(VALUE),
            "acknowledged record {i} lost"
        );
    }
    for i in recovered..issued {
        assert_eq!(db.get(&key_of(i)), None, "phantom record {i}");
    }
    let report = TornReport {
        group,
        issued,
        acked,
        recovered,
        lost,
        replayed: w.replayed_records,
        torn_truncated: w.torn_tail_truncated,
    };
    println!(
        "torn tail: issued {issued}, acked {acked}, recovered {recovered}, lost {lost} (< group {group})"
    );
    report
}

fn enforce_gates(wal: &[WalLine]) {
    let by = |n: &str| wal.iter().find(|l| l.name == n).unwrap();
    // Group commit amortizes the sync barrier.
    assert!(
        by("group_64").syncs < by("group_1").syncs,
        "group commit must reduce sync barriers ({} vs {})",
        by("group_64").syncs,
        by("group_1").syncs
    );
    // Same records → same WAL bytes regardless of grouping.
    assert_eq!(
        by("group_1").wal_bytes,
        by("group_64").wal_bytes,
        "grouping changes sync cadence, not log content"
    );
    // Framing overhead is bounded: header (16 B) + key length (4 B) on an
    // 18-byte logical record ≈ 2.1×.
    let amp = by("group_1").write_amp;
    assert!(
        amp > 1.0 && amp < 3.0,
        "WAL write amplification {amp:.2} outside sane bounds"
    );
    assert_eq!(by("wal_off").wal_bytes, 0, "disabled WAL must write nothing");
}

fn write_json(cfg: &Config, wal: &[WalLine], rec: &[RecoveryLine], torn: &TornReport) {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\n    \"n_keys\": {},\n    \"smoke\": {},\n    \"note\": \"WAL write-path overhead, clean-shutdown recovery cost per filter kind, and torn-tail crash-recovery gates on the simulated disk\"\n  }},\n",
        cfg.n_keys, cfg.smoke
    ));
    json.push_str("  \"wal_overhead\": [\n");
    for (i, l) in wal.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"config\": \"{}\", \"wal\": {}, \"group_commit\": {}, \"mops\": {:.3}, \"syncs\": {}, \"wal_bytes\": {}, \"logical_bytes\": {}, \"write_amp\": {:.3} }}{}\n",
            l.name, l.wal, l.group, l.mops, l.syncs, l.wal_bytes, l.logical_bytes, l.write_amp,
            if i + 1 < wal.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, l) in rec.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"kind\": \"{}\", \"open_ms\": {:.3}, \"replayed_records\": {}, \"block_reads\": {}, \"tables\": {}, \"filters_loaded\": {} }}{}\n",
            l.kind, l.open_ms, l.replayed, l.block_reads, l.tables, l.filters_loaded,
            if i + 1 < rec.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"torn_tail\": {{ \"group_commit\": {}, \"issued\": {}, \"acked\": {}, \"recovered\": {}, \"lost\": {}, \"replayed_records\": {}, \"torn_tail_truncated\": {} }}\n",
        torn.group, torn.issued, torn.acked, torn.recovered, torn.lost, torn.replayed,
        torn.torn_truncated
    ));
    json.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&cfg.out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&cfg.out_path, json) {
        eprintln!("error: cannot write {}: {e}", cfg.out_path);
        std::process::exit(1);
    }

    // Schema self-check: every key the downstream tooling greps for.
    let back = std::fs::read_to_string(&cfg.out_path).expect("read back BENCH_recovery.json");
    for required in [
        "\"meta\"", "\"n_keys\"", "\"smoke\"", "\"wal_overhead\"", "\"config\"",
        "\"group_commit\"", "\"mops\"", "\"syncs\"", "\"wal_bytes\"", "\"write_amp\"",
        "\"recovery\"", "\"kind\"", "\"open_ms\"", "\"replayed_records\"", "\"block_reads\"",
        "\"tables\"", "\"filters_loaded\"",
        "\"torn_tail\"", "\"issued\"", "\"acked\"", "\"recovered\"", "\"lost\"",
        "\"torn_tail_truncated\"",
    ] {
        assert!(back.contains(required), "{} missing key {required}", cfg.out_path);
    }
    println!("wrote {} (schema check passed)", cfg.out_path);
}

fn main() {
    let cfg = config();
    let wal = bench_wal_overhead(&cfg);
    let rec = bench_recovery_time(&cfg);
    let torn = bench_torn_tail();
    enforce_gates(&wal);
    write_json(&cfg, &wal, &rec, &torn);
}
