//! Shared measurement helpers for the reproduction harness.
//!
//! Every experiment of DESIGN.md's index lives under [`experiments`]; run
//! them with `cargo run -p memtree-bench --release --bin repro -- <id>`.

pub mod experiments;

use std::time::{Duration, Instant};

/// Experiment scale. Paper datasets (25–100 M keys) are scaled down;
/// shapes are preserved (EXPERIMENTS.md records both).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Keys loaded into the structure under test.
    pub n_keys: usize,
    /// Operations measured.
    pub n_ops: usize,
}

impl Scale {
    /// Fast mode for `repro all --quick` (seconds per experiment).
    pub fn quick() -> Self {
        Self {
            n_keys: 100_000,
            n_ops: 100_000,
        }
    }

    /// Default single-experiment mode.
    pub fn standard() -> Self {
        Self {
            n_keys: 1_000_000,
            n_ops: 1_000_000,
        }
    }
}

/// Times a closure.
pub fn time<F: FnOnce()>(f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Million operations per second.
pub fn mops(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64() / 1e6
}

/// Nanoseconds per operation.
pub fn ns_per_op(n: usize, d: Duration) -> f64 {
    d.as_nanos() as f64 / n.max(1) as f64
}

/// Megabytes.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

/// Section header for experiment output.
pub fn header(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}
