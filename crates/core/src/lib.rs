//! # memtree-core
//!
//! The assembled public API of the *memtree* workspace — a from-scratch
//! reproduction of **"Memory-Efficient Search Trees for Database
//! Management Systems"** (Huanchen Zhang). The thesis's recipe has four
//! steps, each a module family here:
//!
//! 1. **Dynamic-to-Static compaction** (Ch. 2) — [`trees`] pairs four
//!    dynamic search trees (B+tree, Masstree, Skip List, ART) with their
//!    Compact variants built by the D-to-S rules, plus the block-compressed
//!    B+tree of the Compression rule.
//! 2. **Succinct tries** (Ch. 3) — [`fst`]: the Fast Succinct Trie
//!    (LOUDS-Dense + LOUDS-Sparse) within ~10 bits/node of the
//!    information-theoretic bound at pointer-tree speed.
//! 3. **Range filtering** (Ch. 4) — [`surf`]: the Succinct Range Filter
//!    with hashed/real/mixed suffixes, plus [`filters`] (Bloom, ARF) and
//!    [`lsm`], a mini-RocksDB to exercise them end to end.
//! 4. **Dynamism back** (Ch. 5) — [`hybrid`]: the dual-stage hybrid index
//!    with ratio-bounded merges; [`hstore`], a mini H-Store running TPC-C,
//!    Voter and Articles with pluggable indexes and anti-caching.
//! 5. **Key compression** (Ch. 6) — [`hope`]: the High-speed
//!    Order-Preserving Encoder with six entropy schemes, applicable to any
//!    of the trees above.
//!
//! ## Quick start
//!
//! ```
//! use memtree_core::prelude::*;
//!
//! // A compact static tree built from sorted entries…
//! let entries: Vec<(Vec<u8>, u64)> =
//!     (0..1000u64).map(|i| (i.to_be_bytes().to_vec(), i)).collect();
//! let fst = Fst::build(&entries);
//! assert_eq!(fst.get(&42u64.to_be_bytes()), Some(42));
//!
//! // …a range filter over the same keys…
//! let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
//! let surf = Surf::from_keys(&keys, SuffixConfig::Real(8));
//! assert!(surf.may_contain(&42u64.to_be_bytes()));
//!
//! // …and a hybrid index that stays writable.
//! let mut hybrid = HybridBTree::new();
//! for (k, v) in &entries {
//!     hybrid.insert(k, *v);
//! }
//! assert_eq!(hybrid.get(&42u64.to_be_bytes()), Some(42));
//! ```

#![warn(missing_docs)]

/// Shared traits, key utilities, hashing, memory accounting.
pub mod common {
    pub use memtree_common::*;
}

/// Bit vectors, rank/select, LOUDS primitives.
pub mod succinct {
    pub use memtree_succinct::*;
}

/// The block codec used by the Compression rule.
pub mod compress {
    pub use memtree_compress::*;
}

/// The four dynamic trees and their Compact (D-to-S) variants.
pub mod trees {
    pub use memtree_art::{Art, CompactArt};
    pub use memtree_btree::{BPlusTree, CompactBTree, CompressedBTree, PrefixBTree};
    pub use memtree_masstree::{CompactMasstree, Masstree};
    pub use memtree_patricia::CritBitTrie;
    pub use memtree_skiplist::{CompactSkipList, SkipList};
}

/// The Fast Succinct Trie and its baselines.
pub mod fst {
    pub use memtree_fst::*;
}

/// The Succinct Range Filter.
pub mod surf {
    pub use memtree_surf::*;
}

/// Bloom filter, dynamic Bloom filter, ARF.
pub mod filters {
    pub use memtree_filters::*;
}

/// The dual-stage hybrid index.
pub mod hybrid {
    pub use memtree_hybrid::*;
}

/// The High-speed Order-Preserving Encoder.
pub mod hope {
    pub use memtree_hope::*;
}

/// The mini LSM engine (RocksDB-style).
pub mod lsm {
    pub use memtree_lsm::*;
}

/// The mini H-Store with TPC-C/Voter/Articles.
pub mod hstore {
    pub use memtree_hstore::*;
}

/// YCSB and dataset generators.
pub mod workload {
    pub use memtree_workload::*;
}

/// The names most programs need.
pub mod prelude {
    pub use memtree_common::key::{decode_u64, encode_u64};
    pub use memtree_common::traits::{
        OrderedIndex, PointFilter, RangeFilter, StaticIndex, Value,
    };
    pub use memtree_filters::{Arf, BloomFilter, DynamicBloom};
    pub use memtree_fst::{Fst, LoudsTrie, TrieOpts};
    pub use memtree_hope::{Hope, HopeIndex, Scheme};
    pub use memtree_hybrid::{
        DualStage, HybridArt, HybridBTree, HybridCompressedBTree, HybridMasstree,
        HybridSkipList, MergeTrigger, SecondaryIndex,
    };
    pub use memtree_surf::{SuffixConfig, Surf};
}
