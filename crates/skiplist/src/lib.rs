//! Paged-deterministic skip list (§2.1) and its Compact variant.
//!
//! The dynamic structure follows the *paged-deterministic skip list* the
//! thesis uses: every level is a linked list of pages; level 0 holds the
//! entries, higher levels hold one (key, down-pointer) pair per page of the
//! level below. Search walks right along a level skip-list-style, then
//! descends. The hierarchy "resembles a B+tree" (the thesis's words) but
//! grows bottom-up by page splits instead of top-down rebalancing.
//!
//! [`CompactSkipList`] applies the Compaction + Structural Reduction rules:
//! each level becomes a single 100 %-full sorted array, lane entries index
//! the level below, and all next-pointers disappear (positions are implied
//! by array order).

#![warn(missing_docs)]

use memtree_common::mem::vec_bytes;
use memtree_common::probe::ProbeStats;
use memtree_common::traits::{BatchProbe, OrderedIndex, StaticIndex, Value};

type PageId = u32;
const NIL: PageId = u32::MAX;

/// Maximum entries per page.
pub const PAGE_CAP: usize = 32;

#[derive(Debug)]
struct Page {
    keys: Vec<Box<[u8]>>,
    /// Level 0: values. Level > 0: page ids of the level below.
    payload: Vec<u64>,
    next: PageId,
}

impl Page {
    fn new() -> Self {
        Self {
            keys: Vec::new(),
            payload: Vec::new(),
            next: NIL,
        }
    }
}

/// A paged-deterministic skip list mapping byte strings to values.
#[derive(Debug)]
pub struct SkipList {
    pages: Vec<Page>,
    /// Head page of each level; `heads[0]` is the entry level.
    heads: Vec<PageId>,
    len: usize,
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        let pages = vec![Page::new()];
        Self {
            pages,
            heads: vec![0],
            len: 0,
        }
    }

    fn alloc(&mut self, page: Page) -> PageId {
        self.pages.push(page);
        (self.pages.len() - 1) as PageId
    }

    /// Walks right along `level` starting at `from` until the page that may
    /// hold `key`; returns its id.
    fn walk_right(&self, mut id: PageId, key: &[u8]) -> PageId {
        loop {
            let page = &self.pages[id as usize];
            if page.next == NIL {
                return id;
            }
            let next = &self.pages[page.next as usize];
            match next.keys.first() {
                Some(first) if first.as_ref() <= key => id = page.next,
                _ => return id,
            }
        }
    }

    /// Descends from the top level to the level-0 page that may hold `key`,
    /// recording the path of page ids (top level first).
    fn descend(&self, key: &[u8]) -> Vec<PageId> {
        let mut path = Vec::with_capacity(self.heads.len());
        let mut id = *self.heads.last().expect("at least one level");
        for level in (0..self.heads.len()).rev() {
            id = self.walk_right(id, key);
            path.push(id);
            if level > 0 {
                let page = &self.pages[id as usize];
                let slot = page.keys.partition_point(|k| k.as_ref() <= key);
                id = page.payload[slot.saturating_sub(1)] as PageId;
            }
        }
        path
    }

    /// Splits page `id` (at `level`) if over capacity; inserts the new
    /// page's first key into the parent recorded in `path`, growing levels
    /// as needed. `path[path.len()-1-level]` is the page at `level`.
    fn split_up(&mut self, path: &[PageId], mut level: usize) {
        let mut id = path[path.len() - 1 - level];
        loop {
            if self.pages[id as usize].keys.len() <= PAGE_CAP {
                return;
            }
            let page = &mut self.pages[id as usize];
            let mid = page.keys.len() / 2;
            let r_keys = page.keys.split_off(mid);
            let r_payload = page.payload.split_off(mid);
            let sep = r_keys[0].clone();
            let old_next = page.next;
            let rid = self.alloc(Page {
                keys: r_keys,
                payload: r_payload,
                next: old_next,
            });
            self.pages[id as usize].next = rid;
            // Insert (sep, rid) into the parent level.
            level += 1;
            if level == self.heads.len() {
                // New top level pointing at both pages. The head page's
                // first separator is an explicit -infinity (empty string):
                // the leftmost spine can absorb ever-smaller keys, so any
                // concrete first separator would go stale-high and misroute
                // descents below it.
                let old_head = self.heads[level - 1];
                let top = self.alloc(Page {
                    keys: vec![Box::from(&[][..]), sep],
                    payload: vec![old_head as u64, rid as u64],
                    next: NIL,
                });
                self.heads.push(top);
                return;
            }
            let parent = path[path.len() - 1 - level];
            let p = &mut self.pages[parent as usize];
            let slot = p.keys.partition_point(|k| k.as_ref() <= sep.as_ref());
            p.keys.insert(slot, sep);
            p.payload.insert(slot, rid as u64);
            id = parent;
        }
    }

    /// Instrumented point query for the Table 2.2 reproduction.
    pub fn get_profiled(&self, key: &[u8]) -> (Option<Value>, ProbeStats) {
        let mut stats = ProbeStats::default();
        let mut id = *self.heads.last().unwrap();
        for level in (0..self.heads.len()).rev() {
            // Horizontal walk.
            loop {
                stats.nodes_visited += 1;
                let page = &self.pages[id as usize];
                if page.next == NIL {
                    break;
                }
                let next_first = &self.pages[page.next as usize].keys[0];
                stats.key_bytes_compared +=
                    (memtree_common::key::common_prefix_len(next_first, key) + 1) as u64;
                if next_first.as_ref() <= key {
                    stats.pointer_derefs += 1;
                    id = page.next;
                } else {
                    break;
                }
            }
            let page = &self.pages[id as usize];
            let slot = page.keys.partition_point(|k| {
                stats.key_bytes_compared +=
                    (memtree_common::key::common_prefix_len(k, key) + 1) as u64;
                k.as_ref() <= key
            });
            if level > 0 {
                stats.pointer_derefs += 1;
                id = page.payload[slot.saturating_sub(1)] as PageId;
            } else {
                if slot > 0 && page.keys[slot - 1].as_ref() == key {
                    return (Some(page.payload[slot - 1]), stats);
                }
                return (None, stats);
            }
        }
        unreachable!()
    }

    /// Iterates in order from the first key `>= low` until `f` returns
    /// `false`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let path = self.descend(low);
        let mut id = *path.last().unwrap();
        let mut start = self.pages[id as usize]
            .keys
            .partition_point(|k| k.as_ref() < low);
        loop {
            let page = &self.pages[id as usize];
            for i in start..page.keys.len() {
                if !f(&page.keys[i], page.payload[i]) {
                    return;
                }
            }
            if page.next == NIL {
                return;
            }
            id = page.next;
            start = 0;
        }
    }
}

impl OrderedIndex for SkipList {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        let path = self.descend(key);
        let leaf = *path.last().unwrap();
        let page = &mut self.pages[leaf as usize];
        match page.keys.binary_search_by(|k| k.as_ref().cmp(key)) {
            Ok(_) => false,
            Err(pos) => {
                page.keys.insert(pos, key.into());
                page.payload.insert(pos, value);
                self.len += 1;
                self.split_up(&path, 0);
                true
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let path = self.descend(key);
        let leaf = &self.pages[*path.last().unwrap() as usize];
        leaf.keys
            .binary_search_by(|k| k.as_ref().cmp(key))
            .ok()
            .map(|i| leaf.payload[i])
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        let path = self.descend(key);
        let leaf = &mut self.pages[*path.last().unwrap() as usize];
        match leaf.keys.binary_search_by(|k| k.as_ref().cmp(key)) {
            Ok(i) => {
                leaf.payload[i] = value;
                true
            }
            Err(_) => false,
        }
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        // Removal without page merging (splits maintain balance; empty
        // pages are skipped by the horizontal walk).
        let path = self.descend(key);
        let leaf = *path.last().unwrap();
        let page = &mut self.pages[leaf as usize];
        match page.keys.binary_search_by(|k| k.as_ref().cmp(key)) {
            Ok(i) => {
                page.keys.remove(i);
                page.payload.remove(i);
                self.len -= 1;
                true
            }
            Err(_) => false,
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        let mut total = vec_bytes(&self.pages) + vec_bytes(&self.heads);
        for p in &self.pages {
            total += vec_bytes(&p.keys)
                + p.keys.iter().map(|k| k.len()).sum::<usize>()
                + vec_bytes(&p.payload);
        }
        total
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        SkipList::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        SkipList::range_from(self, low, f);
    }

    fn clear(&mut self) {
        self.pages.clear();
        self.pages.push(Page::new());
        self.heads.clear();
        self.heads.push(0);
        self.len = 0;
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for SkipList {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


/// Compact skip list: every level flattened into one contiguous array,
/// next-pointers removed (Figure 2.3, Skip List row).
#[derive(Debug)]
pub struct CompactSkipList {
    key_bytes: Vec<u8>,
    key_offsets: Vec<u32>,
    vals: Vec<Value>,
    /// Express lanes: `lanes[0]` samples every [`PAGE_CAP`]-th entry,
    /// `lanes[l]` samples the lane below. Entries are leaf indexes.
    lanes: Vec<Vec<u32>>,
}

impl CompactSkipList {
    #[inline]
    fn key(&self, i: usize) -> &[u8] {
        &self.key_bytes[self.key_offsets[i] as usize..self.key_offsets[i + 1] as usize]
    }

    /// First position with key `>= target`.
    pub fn lower_bound(&self, target: &[u8]) -> usize {
        let n = self.vals.len();
        if n == 0 {
            return 0;
        }
        // Skip-list style: scan each lane left-to-right within the window
        // inherited from the lane above.
        let mut lo = 0usize; // candidate leaf index
        let mut window: Option<(usize, usize)> = None; // lane-relative range
        for (depth, lane) in self.lanes.iter().enumerate().rev() {
            let (s, e) = window.unwrap_or((0, lane.len()));
            let mut i = s;
            // Linear "express-lane" scan: the window is at most PAGE_CAP wide.
            while i + 1 < e && self.key(lane[i + 1] as usize) <= target {
                i += 1;
            }
            lo = lane[i] as usize;
            if depth > 0 {
                let below = &self.lanes[depth - 1];
                window = Some((i * PAGE_CAP, ((i + 1) * PAGE_CAP).min(below.len())));
            } else {
                window = Some((lo, (lo + PAGE_CAP).min(n)));
            }
        }
        let (s, e) = window.unwrap_or((0, n.min(PAGE_CAP)));
        let mut i = s.max(lo);
        while i < e && self.key(i) < target {
            i += 1;
        }
        // The window math guarantees the answer is inside [s, e] or at e.
        i
    }
}

impl StaticIndex for CompactSkipList {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        let n = entries.len();
        let mut key_bytes = Vec::with_capacity(entries.iter().map(|(k, _)| k.len()).sum());
        let mut key_offsets = Vec::with_capacity(n + 1);
        let mut vals = Vec::with_capacity(n);
        for (k, v) in entries {
            key_offsets.push(key_bytes.len() as u32);
            key_bytes.extend_from_slice(k);
            vals.push(*v);
        }
        key_offsets.push(key_bytes.len() as u32);
        let mut lanes = Vec::new();
        if n > PAGE_CAP {
            let mut cur: Vec<u32> = (0..n).step_by(PAGE_CAP).map(|i| i as u32).collect();
            while cur.len() > PAGE_CAP {
                let next = cur.iter().step_by(PAGE_CAP).copied().collect();
                lanes.push(cur);
                cur = next;
            }
            lanes.push(cur);
        }
        Self {
            key_bytes,
            key_offsets,
            vals,
            lanes,
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let pos = self.lower_bound(key);
        if pos < self.vals.len() && self.key(pos) == key {
            Some(self.vals[pos])
        } else {
            None
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let start = self.lower_bound(low);
        let end = (start + n).min(self.vals.len());
        out.extend_from_slice(&self.vals[start..end]);
        end - start
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.key_bytes)
            + vec_bytes(&self.key_offsets)
            + vec_bytes(&self.vals)
            + self.lanes.iter().map(vec_bytes).sum::<usize>()
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        for i in 0..self.vals.len() {
            f(self.key(i), self.vals[i]);
        }
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        for i in self.lower_bound(low)..self.vals.len() {
            if !f(self.key(i), self.vals[i]) {
                return;
            }
        }
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for CompactSkipList {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn insert_get_many() {
        let mut s = SkipList::new();
        for i in 0..5000u64 {
            assert!(s.insert(&encode_u64(i * 7), i));
        }
        assert_eq!(s.len(), 5000);
        for i in 0..5000u64 {
            assert_eq!(s.get(&encode_u64(i * 7)), Some(i));
            assert_eq!(s.get(&encode_u64(i * 7 + 1)), None);
        }
        assert!(s.heads.len() >= 2, "should have grown express lanes");
    }

    #[test]
    fn random_order_inserts() {
        let mut s = SkipList::new();
        let mut state = 17u64;
        let mut keys = Vec::new();
        for _ in 0..3000 {
            let k = memtree_common::hash::splitmix64(&mut state);
            if s.insert(&encode_u64(k), k) {
                keys.push(k);
            }
        }
        for &k in &keys {
            assert_eq!(s.get(&encode_u64(k)), Some(k));
        }
        keys.sort_unstable();
        let mut got = Vec::new();
        s.for_each_sorted(&mut |_k, v| got.push(v));
        assert_eq!(got, keys);
    }

    #[test]
    fn duplicates_updates_removals() {
        let mut s = SkipList::new();
        assert!(s.insert(b"k1", 1));
        assert!(!s.insert(b"k1", 2));
        assert!(s.update(b"k1", 3));
        assert_eq!(s.get(b"k1"), Some(3));
        assert!(s.remove(b"k1"));
        assert!(!s.remove(b"k1"));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn scan_ordering() {
        let mut s = SkipList::new();
        for i in (0..1000u64).rev() {
            s.insert(&encode_u64(i * 2), i);
        }
        let mut out = Vec::new();
        s.scan(&encode_u64(101), 5, &mut out);
        assert_eq!(out, vec![51, 52, 53, 54, 55]);
    }

    #[test]
    fn default_multi_scan_matches_per_range_loop() {
        // SkipList uses the trait's per-range default; pin the positional
        // contract here so every fallback implementor is covered.
        let mut s = SkipList::new();
        for i in 0..500u64 {
            s.insert(&encode_u64(i * 3), i);
        }
        let lows: Vec<Vec<u8>> = (0..60u64).map(|i| encode_u64(i * 29).to_vec()).collect();
        let ranges: Vec<(&[u8], usize)> = lows
            .iter()
            .enumerate()
            .map(|(i, low)| (low.as_slice(), [0usize, 1, 8, 1000][i % 4]))
            .collect();
        let expect: Vec<Vec<Value>> = ranges
            .iter()
            .map(|&(low, n)| {
                let mut one = Vec::new();
                s.scan(low, n, &mut one);
                one
            })
            .collect();
        assert_eq!(s.multi_scan_vec(&ranges), expect);
    }

    #[test]
    fn compact_matches_dynamic() {
        let mut s = SkipList::new();
        let mut state = 23u64;
        for _ in 0..4000 {
            let k = memtree_common::hash::splitmix64(&mut state) % 100_000;
            s.insert(&encode_u64(k), k);
        }
        let entries = s.drain_sorted();
        let c = CompactSkipList::build(&entries);
        assert_eq!(c.len(), entries.len());
        for (k, v) in &entries {
            assert_eq!(c.get(k), Some(*v), "key {v}");
        }
        assert_eq!(c.get(&encode_u64(200_000)), None);
        // Lower-bound cross-check on probes.
        for probe in 0..500u64 {
            let p = encode_u64(probe * 211);
            let expect = entries.partition_point(|(k, _)| k.as_slice() < p.as_slice());
            assert_eq!(c.lower_bound(&p), expect, "probe {probe}");
        }
    }

    #[test]
    fn compact_saves_memory() {
        let mut s = SkipList::new();
        for i in 0..50_000u64 {
            s.insert(&encode_u64(i), i);
        }
        let entries: Vec<_> = {
            let mut v = Vec::new();
            s.for_each_sorted(&mut |k, val| v.push((k.to_vec(), val)));
            v
        };
        let c = CompactSkipList::build(&entries);
        assert!(
            (c.mem_usage() as f64) < 0.7 * s.mem_usage() as f64,
            "compact {} dynamic {}",
            c.mem_usage(),
            s.mem_usage()
        );
    }

    #[test]
    fn compact_empty_and_small() {
        let c = CompactSkipList::build(&[]);
        assert_eq!(c.get(b"x"), None);
        let mut out = Vec::new();
        assert_eq!(c.scan(b"", 10, &mut out), 0);
        let c = CompactSkipList::build(&[(b"only".to_vec(), 9)]);
        assert_eq!(c.get(b"only"), Some(9));
        assert_eq!(c.get(b"onlx"), None);
    }

    #[test]
    fn profiled_get() {
        let mut s = SkipList::new();
        for i in 0..10_000u64 {
            s.insert(&encode_u64(i), i);
        }
        let (v, stats) = s.get_profiled(&encode_u64(9876));
        assert_eq!(v, Some(9876));
        assert!(stats.nodes_visited >= 2);
        assert!(stats.key_bytes_compared > 0);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use memtree_common::key::encode_u64;

    /// Regression: a cascade split on the leftmost spine used to insert a
    /// separator at slot 0 of a head page whose first key had gone
    /// stale-high, misrouting all smaller keys. Incremental verification
    /// catches any reintroduction.
    #[test]
    fn leftmost_spine_split_keeps_all_keys() {
        let mut s = SkipList::new();
        let mut state = 17u64;
        let mut keys = Vec::new();
        for n in 0..2000 {
            let k = memtree_common::hash::splitmix64(&mut state);
            if s.insert(&encode_u64(k), k) {
                keys.push(k);
            }
            if n % 64 == 0 || (1800..1900).contains(&n) {
                for &kk in &keys {
                    assert_eq!(
                        s.get(&encode_u64(kk)),
                        Some(kk),
                        "lost key {kk} after insert #{n}"
                    );
                }
            }
        }
    }
}
