//! Core index and filter abstractions.
//!
//! Every search tree in the workspace speaks byte-string keys. Integer keys
//! are converted with the order-preserving encodings in [`crate::key`], so a
//! single trait covers the thesis's three key types (random u64, mono-inc
//! u64, email strings).

use crate::bitset::BitSet;

/// The value type stored in every index: a 64-bit "tuple pointer", matching
/// the thesis microbenchmarks where all values are 64-bit record pointers.
pub type Value = u64;

/// A dynamic, order-preserving index (the thesis's "original"/dynamic-stage
/// structures: B+tree, Masstree, Skip List, ART).
pub trait OrderedIndex {
    /// Inserts `key → value`. Returns `false` (and leaves the index
    /// unchanged) if `key` was already present — the key-uniqueness check a
    /// primary index must perform.
    fn insert(&mut self, key: &[u8], value: Value) -> bool;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Updates the value of an existing key in place. Returns `false` if the
    /// key is absent.
    fn update(&mut self, key: &[u8], value: Value) -> bool;

    /// Removes a key. Returns `false` if it was absent.
    fn remove(&mut self, key: &[u8]) -> bool;

    /// Scans at most `n` values starting from the smallest key `>= low`,
    /// appending them to `out` in key order. Returns the number appended.
    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory footprint in bytes (structure + keys, not the
    /// tuples the values point to).
    fn mem_usage(&self) -> usize;

    /// Visits every `(key, value)` pair in ascending key order. The key slice
    /// is only valid for the duration of the callback (implementations may
    /// reassemble keys in a scratch buffer).
    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value));

    /// Visits `(key, value)` pairs in ascending order starting at the first
    /// key `>= low`, until `f` returns `false`.
    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool);

    /// Drains the index into a sorted `(key, value)` vector, leaving it
    /// empty. Default implementation copies via [`Self::for_each_sorted`].
    fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Value)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_sorted(&mut |k, v| out.push((k.to_vec(), v)));
        self.clear();
        out
    }

    /// Removes all entries.
    fn clear(&mut self);
}

/// A static, read-optimized index built once from sorted input (the
/// thesis's "compact" D-to-S structures and FST).
pub trait StaticIndex: Sized {
    /// Builds the index from key-sorted, duplicate-free `(key, value)`
    /// pairs.
    ///
    /// # Panics
    /// Implementations may panic (in debug builds) if the input is unsorted
    /// or contains duplicates.
    fn build(entries: &[(Vec<u8>, Value)]) -> Self;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Scans at most `n` values starting from the smallest key `>= low`,
    /// appending them to `out` in key order. Returns the number appended.
    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory footprint in bytes.
    fn mem_usage(&self) -> usize;

    /// Visits every `(key, value)` pair in ascending key order.
    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value));

    /// Visits `(key, value)` pairs in ascending order starting at the first
    /// key `>= low`, until `f` returns `false`.
    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool);
}

/// Batched point-lookup extension for [`OrderedIndex`] / [`StaticIndex`]
/// implementations — the serving layer's multi-get.
///
/// # Contract
///
/// * Results are **positional**: `multi_get` appends exactly one element
///   per input key, and `out[i]` (relative to the append point) answers
///   `keys[i]`.
/// * A miss is `None`; duplicate keys in the batch are allowed and each
///   gets its own answer.
/// * Implementations may probe in any internal order (sorted-batch
///   descent, level-synchronous traversal, …) but must report results in
///   input order, and must behave exactly like a per-key `get` loop.
///
/// The default `multi_get` *is* the per-key loop; structures with a real
/// batched path (FST, Compact B+tree, Compact ART, the hybrid `DualStage`)
/// override it to amortize cache misses across the batch.
pub trait BatchProbe {
    /// Single-key probe; the default `multi_get` fallback calls this once
    /// per key. Implementations delegate to their `get`.
    fn probe_one(&self, key: &[u8]) -> Option<Value>;

    /// Batched point lookup: appends one `Option<Value>` per key to `out`.
    fn multi_get(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        out.extend(keys.iter().map(|k| self.probe_one(k)));
    }

    /// Convenience wrapper returning a fresh vector.
    fn multi_get_vec(&self, keys: &[&[u8]]) -> Vec<Option<Value>> {
        let mut out = Vec::with_capacity(keys.len());
        self.multi_get(keys, &mut out);
        out
    }

    /// Single-range scan; the default `multi_scan` fallback calls this once
    /// per range. Implementations delegate to their `scan`.
    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize;

    /// Batched range scan: for each `(low, n)` pair, appends one result
    /// vector to `out` holding the values of at most `n` smallest keys
    /// `>= low`, in key order.
    ///
    /// # Contract
    ///
    /// * Results are **positional**: exactly one `Vec<Value>` is appended per
    ///   input range, and `out[i]` (relative to the append point) answers
    ///   `ranges[i]`. Overlapping or duplicate ranges each get a full,
    ///   independent answer.
    /// * Each result must equal what a per-range `scan(low, n, ..)` loop
    ///   would produce; batching may only change *how* the tree is walked.
    ///
    /// Structures with a real batched path (Compact B+tree, Compact ART,
    /// FST) override this to share the upper-level descent across sorted
    /// range starts; everything else uses this per-range loop.
    fn multi_scan(&self, ranges: &[(&[u8], usize)], out: &mut Vec<Vec<Value>>) {
        for &(low, n) in ranges {
            let mut one = Vec::with_capacity(n);
            self.scan_one(low, n, &mut one);
            out.push(one);
        }
    }

    /// Convenience wrapper returning a fresh vector of per-range results.
    fn multi_scan_vec(&self, ranges: &[(&[u8], usize)]) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(ranges.len());
        self.multi_scan(ranges, &mut out);
        out
    }
}

/// A borrowed `range_from`-style cursor source: called with a start key
/// and a visitor that returns `false` to stop the walk.
pub type RangeFromFn<'a> = &'a dyn Fn(&[u8], &mut dyn FnMut(&[u8], Value) -> bool);

/// Runs a batched `multi_scan` over any `range_from`-style cursor source,
/// sharing one forward traversal across ranges whose windows overlap.
///
/// `ranges` is answered positionally into the returned vector (one
/// `Vec<Value>` per input range, ≤ `n` values each, key order). Range starts
/// are visited in sorted order; while walking one range's window, any later
/// range whose `low` has been passed is activated and filled from the same
/// traversal instead of paying its own descent.
///
/// `range_from(low, f)` must visit `(key, value)` pairs in ascending order
/// starting at the first key `>= low`, stopping when `f` returns `false` —
/// i.e. the `OrderedIndex::range_from` / `StaticIndex::range_from` contract.
pub fn multi_scan_merged(
    range_from: RangeFromFn<'_>,
    ranges: &[(&[u8], usize)],
    out: &mut Vec<Vec<Value>>,
) {
    let base = out.len();
    out.extend(ranges.iter().map(|&(_, n)| Vec::with_capacity(n.min(64))));
    if ranges.is_empty() {
        return;
    }
    // Visit range starts smallest-first; ties keep input order (harmless:
    // duplicates activate together and fill identically).
    let mut order: Vec<u32> = (0..ranges.len() as u32).collect();
    order.sort_by(|&a, &b| ranges[a as usize].0.cmp(ranges[b as usize].0));
    let mut next = 0usize; // next un-activated entry of `order`
    // Ranges currently being filled by the shared traversal.
    let mut active: Vec<u32> = Vec::new();
    while next < order.len() {
        let start_low = ranges[order[next] as usize].0;
        active.clear();
        let mut progressed = false;
        range_from(start_low, &mut |k, v| {
            progressed = true;
            // Activate every pending range whose window includes `k` —
            // its low has been passed, so this traversal *is* its scan.
            // Ranges asking for 0 values are trivially done; skip them.
            while next < order.len() && ranges[order[next] as usize].0 <= k {
                let ri = order[next];
                next += 1;
                if ranges[ri as usize].1 > 0 {
                    active.push(ri);
                }
            }
            active.retain(|&ri| {
                let (_, n) = ranges[ri as usize];
                let slot = &mut out[base + ri as usize];
                slot.push(v);
                slot.len() < n
            });
            // Stop as soon as no activated range wants more values; a range
            // starting past this key restarts with its own descent rather
            // than dragging the cursor through the gap.
            !active.is_empty()
        });
        if !progressed {
            // The tree holds no key >= start_low; every remaining range
            // (lows are >= start_low) is empty too.
            break;
        }
        // Loop: either the traversal stopped with pending ranges further
        // right (restart there), or everything is answered.
    }
}

/// Approximate point-membership filter (Bloom filter, SuRF). One-sided
/// error: `false` guarantees absence, `true` may be a false positive.
pub trait PointFilter {
    /// May `key` be present?
    fn may_contain(&self, key: &[u8]) -> bool;

    /// Batched membership probe: bit `i` of the result answers `keys[i]`
    /// (the positional contract of [`BatchProbe::multi_get`], packed).
    ///
    /// Same one-sided error as [`Self::may_contain`]: a zero bit guarantees
    /// absence, a set bit may be a false positive. Must answer exactly like
    /// a per-key `may_contain` loop; the default *is* that loop. SuRF
    /// overrides it with a level-synchronous descent of the sorted batch.
    fn may_contain_batch(&self, keys: &[&[u8]]) -> BitSet {
        let mut out = BitSet::new(keys.len());
        for (i, k) in keys.iter().enumerate() {
            if self.may_contain(k) {
                out.set(i);
            }
        }
        out
    }

    /// Filter size in bytes (for bits-per-key accounting).
    fn size_bytes(&self) -> usize;
}

/// Approximate range-membership filter (SuRF; ARF for integer spaces).
/// One-sided error: `false` guarantees the range holds no key.
pub trait RangeFilter: PointFilter {
    /// May the half-open range `[low, high)` contain a key? Implementations
    /// with inclusive semantics document the deviation.
    fn may_contain_range(&self, low: &[u8], high: &[u8]) -> bool;
}
