//! Core index and filter abstractions.
//!
//! Every search tree in the workspace speaks byte-string keys. Integer keys
//! are converted with the order-preserving encodings in [`crate::key`], so a
//! single trait covers the thesis's three key types (random u64, mono-inc
//! u64, email strings).

/// The value type stored in every index: a 64-bit "tuple pointer", matching
/// the thesis microbenchmarks where all values are 64-bit record pointers.
pub type Value = u64;

/// A dynamic, order-preserving index (the thesis's "original"/dynamic-stage
/// structures: B+tree, Masstree, Skip List, ART).
pub trait OrderedIndex {
    /// Inserts `key → value`. Returns `false` (and leaves the index
    /// unchanged) if `key` was already present — the key-uniqueness check a
    /// primary index must perform.
    fn insert(&mut self, key: &[u8], value: Value) -> bool;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Updates the value of an existing key in place. Returns `false` if the
    /// key is absent.
    fn update(&mut self, key: &[u8], value: Value) -> bool;

    /// Removes a key. Returns `false` if it was absent.
    fn remove(&mut self, key: &[u8]) -> bool;

    /// Scans at most `n` values starting from the smallest key `>= low`,
    /// appending them to `out` in key order. Returns the number appended.
    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory footprint in bytes (structure + keys, not the
    /// tuples the values point to).
    fn mem_usage(&self) -> usize;

    /// Visits every `(key, value)` pair in ascending key order. The key slice
    /// is only valid for the duration of the callback (implementations may
    /// reassemble keys in a scratch buffer).
    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value));

    /// Visits `(key, value)` pairs in ascending order starting at the first
    /// key `>= low`, until `f` returns `false`.
    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool);

    /// Drains the index into a sorted `(key, value)` vector, leaving it
    /// empty. Default implementation copies via [`Self::for_each_sorted`].
    fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Value)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_sorted(&mut |k, v| out.push((k.to_vec(), v)));
        self.clear();
        out
    }

    /// Removes all entries.
    fn clear(&mut self);
}

/// A static, read-optimized index built once from sorted input (the
/// thesis's "compact" D-to-S structures and FST).
pub trait StaticIndex: Sized {
    /// Builds the index from key-sorted, duplicate-free `(key, value)`
    /// pairs.
    ///
    /// # Panics
    /// Implementations may panic (in debug builds) if the input is unsorted
    /// or contains duplicates.
    fn build(entries: &[(Vec<u8>, Value)]) -> Self;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Scans at most `n` values starting from the smallest key `>= low`,
    /// appending them to `out` in key order. Returns the number appended.
    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory footprint in bytes.
    fn mem_usage(&self) -> usize;

    /// Visits every `(key, value)` pair in ascending key order.
    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value));

    /// Visits `(key, value)` pairs in ascending order starting at the first
    /// key `>= low`, until `f` returns `false`.
    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool);
}

/// Batched point-lookup extension for [`OrderedIndex`] / [`StaticIndex`]
/// implementations — the serving layer's multi-get.
///
/// # Contract
///
/// * Results are **positional**: `multi_get` appends exactly one element
///   per input key, and `out[i]` (relative to the append point) answers
///   `keys[i]`.
/// * A miss is `None`; duplicate keys in the batch are allowed and each
///   gets its own answer.
/// * Implementations may probe in any internal order (sorted-batch
///   descent, level-synchronous traversal, …) but must report results in
///   input order, and must behave exactly like a per-key `get` loop.
///
/// The default `multi_get` *is* the per-key loop; structures with a real
/// batched path (FST, Compact B+tree, Compact ART, the hybrid `DualStage`)
/// override it to amortize cache misses across the batch.
pub trait BatchProbe {
    /// Single-key probe; the default `multi_get` fallback calls this once
    /// per key. Implementations delegate to their `get`.
    fn probe_one(&self, key: &[u8]) -> Option<Value>;

    /// Batched point lookup: appends one `Option<Value>` per key to `out`.
    fn multi_get(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        out.extend(keys.iter().map(|k| self.probe_one(k)));
    }

    /// Convenience wrapper returning a fresh vector.
    fn multi_get_vec(&self, keys: &[&[u8]]) -> Vec<Option<Value>> {
        let mut out = Vec::with_capacity(keys.len());
        self.multi_get(keys, &mut out);
        out
    }
}

/// Approximate point-membership filter (Bloom filter, SuRF). One-sided
/// error: `false` guarantees absence, `true` may be a false positive.
pub trait PointFilter {
    /// May `key` be present?
    fn may_contain(&self, key: &[u8]) -> bool;

    /// Filter size in bytes (for bits-per-key accounting).
    fn size_bytes(&self) -> usize;
}

/// Approximate range-membership filter (SuRF; ARF for integer spaces).
/// One-sided error: `false` guarantees the range holds no key.
pub trait RangeFilter: PointFilter {
    /// May the half-open range `[low, high)` contain a key? Implementations
    /// with inclusive semantics document the deviation.
    fn may_contain_range(&self, low: &[u8], high: &[u8]) -> bool;
}
