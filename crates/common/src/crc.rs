//! CRC32C (Castagnoli) — the checksum used to frame every compressed
//! block, SSTable block, WAL frame, and anti-cache block.
//!
//! Implemented from scratch (no external crates) as a two-tier,
//! runtime-dispatched kernel:
//!
//! * **Hardware tier** (`x86_64` with SSE4.2): the `crc32` instruction at
//!   8 bytes per instruction, run as **three independent streams** over
//!   1 KiB lanes so the instruction's ~3-cycle latency overlaps
//!   (instruction-level parallelism); lane CRCs are recombined with
//!   compile-time GF(2) zero-shift tables.
//! * **Portable tier**: a compile-time 16 × 256 slicing table driving a
//!   slice-by-16 kernel (two independent 8-byte lanes per step), with a
//!   byte-at-a-time tail.
//!
//! The tier is selected once per process: SSE4.2 is detected at runtime
//! (cached), and `MEMTREE_KERNELS=scalar` (see [`crate::dispatch`]) pins
//! the portable tier so CI can exercise it on any host. Both tiers are
//! exported so differential tests can prove them byte-identical.
//!
//! CRC32C detects all single-bit errors and all burst errors up to 32 bits,
//! which is exactly the corruption model of DESIGN.md's fault section.

/// The reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn byte_crc(mut b: u32) -> u32 {
    let mut k = 0;
    while k < 8 {
        b = if b & 1 != 0 { (b >> 1) ^ POLY } else { b >> 1 };
        k += 1;
    }
    b
}

const fn make_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        t[0][i] = byte_crc(i as u32);
        i += 1;
    }
    let mut s = 1;
    while s < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[s - 1][i];
            t[s][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

static TABLES: [[u32; 256]; 16] = make_tables();

// ---------------------------------------------------------------------------
// GF(2) zero-shift operators (lane recombination for the streamed tier)
// ---------------------------------------------------------------------------
//
// Appending `n` zero bytes to a message transforms its running CRC by a
// fixed linear operator over GF(2) — a 32 × 32 bit matrix, computed at
// compile time by squaring the one-bit shift operator. Because the CRC
// update is linear, `update(s, A || B) = shift_|B|(update(s, A)) ^
// update(0, B)`: each stream runs independently from state 0 and is folded
// in with one table-driven shift. The matrix is flattened into 4 × 256
// byte tables so a shift costs four loads and three XORs.

/// A 32 × 32 GF(2) matrix; `m[j]` is the image of basis vector `1 << j`.
type Mat = [u32; 32];

const fn mat_times(m: &Mat, mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= m[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

const fn mat_mul(a: &Mat, b: &Mat) -> Mat {
    let mut out = [0u32; 32];
    let mut j = 0;
    while j < 32 {
        out[j] = mat_times(a, b[j]);
        j += 1;
    }
    out
}

/// Operator advancing a (reflected) CRC state by `nbits` zero bits.
const fn zeros_matrix(mut nbits: u64) -> Mat {
    // One zero bit: s' = (s >> 1) ^ (POLY if s & 1).
    let mut base: Mat = [0u32; 32];
    base[0] = POLY;
    let mut j = 1;
    while j < 32 {
        base[j] = 1 << (j - 1);
        j += 1;
    }
    let mut result: Mat = [0u32; 32]; // identity
    let mut j = 0;
    while j < 32 {
        result[j] = 1 << j;
        j += 1;
    }
    while nbits != 0 {
        if nbits & 1 != 0 {
            result = mat_mul(&base, &result);
        }
        base = mat_mul(&base, &base);
        nbits >>= 1;
    }
    result
}

/// Byte-table form of [`zeros_matrix`] for `len_bytes` zero bytes.
const fn zeros_table(len_bytes: usize) -> [[u32; 256]; 4] {
    let m = zeros_matrix(8 * len_bytes as u64);
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut b = 0;
        while b < 256 {
            t[k][b] = mat_times(&m, (b as u32) << (8 * k));
            b += 1;
        }
        k += 1;
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn shift_crc(t: &[[u32; 256]; 4], crc: u32) -> u32 {
    t[0][(crc & 0xFF) as usize]
        ^ t[1][((crc >> 8) & 0xFF) as usize]
        ^ t[2][((crc >> 16) & 0xFF) as usize]
        ^ t[3][(crc >> 24) as usize]
}

// ---------------------------------------------------------------------------
// Hardware tier (x86_64, SSE4.2)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod hw {
    use super::{shift_crc, zeros_table};

    /// Bytes per lane in the long three-way streamed pass (3 KiB chunks).
    const LONG: usize = 1024;
    /// Bytes per lane in the short three-way pass draining mid-size tails.
    const SHORT: usize = 64;

    static SHIFT_LONG: [[u32; 256]; 4] = zeros_table(LONG);
    static SHIFT_SHORT: [[u32; 256]; 4] = zeros_table(SHORT);

    /// SSE4.2 `crc32`-instruction form of `crc32c_update`: three
    /// independent 8-bytes-per-instruction streams recombined via the
    /// zero-shift tables, then a single-stream 8-byte loop and byte tail.
    #[target_feature(enable = "sse4.2")]
    pub(super) fn update(state: u32, data: &[u8]) -> u32 {
        use core::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
        let le8 = |c: &[u8]| u64::from_le_bytes(c.try_into().unwrap());
        let mut crc = state as u64;
        let mut p = data;
        // The crc32 intrinsics are safe to call here: the enclosing
        // `target_feature` guarantees SSE4.2, and all slice accesses are
        // bounds-checked.
        {
            macro_rules! three_way {
                ($len:expr, $table:ident) => {
                    while p.len() >= 3 * $len {
                        let (a, rest) = p.split_at($len);
                        let (b, c) = rest.split_at($len);
                        let mut crc0 = crc;
                        let mut crc1 = 0u64;
                        let mut crc2 = 0u64;
                        let mut i = 0;
                        while i < $len {
                            crc0 = _mm_crc32_u64(crc0, le8(&a[i..i + 8]));
                            crc1 = _mm_crc32_u64(crc1, le8(&b[i..i + 8]));
                            crc2 = _mm_crc32_u64(crc2, le8(&c[i..i + 8]));
                            i += 8;
                        }
                        crc = (shift_crc(&$table, shift_crc(&$table, crc0 as u32) ^ crc1 as u32)
                            ^ crc2 as u32) as u64;
                        p = &p[3 * $len..];
                    }
                };
            }
            three_way!(LONG, SHIFT_LONG);
            three_way!(SHORT, SHIFT_SHORT);
            let mut chunks = p.chunks_exact(8);
            for c in &mut chunks {
                crc = _mm_crc32_u64(crc, le8(c));
            }
            let mut crc = crc as u32;
            for &b in chunks.remainder() {
                crc = _mm_crc32_u8(crc, b);
            }
            crc
        }
    }
}

/// Cached tier selection: hardware is used only when the CPU has SSE4.2
/// *and* the [`crate::dispatch`] policy allows hardware tiers.
#[cfg(target_arch = "x86_64")]
fn hw_enabled() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let on = crate::dispatch::hardware_allowed()
                && std::arch::is_x86_feature_detected!("sse4.2");
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        s => s == 2,
    }
}

/// Name of the CRC tier the dispatcher selected for this process
/// (`"sse4.2-3way"` or `"slicing16"`); recorded in benchmark metadata.
pub fn active_kernel() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if hw_enabled() {
        return "sse4.2-3way";
    }
    "slicing16"
}

#[inline]
fn le_u32(c: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([c[at], c[at + 1], c[at + 2], c[at + 3]])
}

/// One 8-byte lane: folds `crc` (XORed into the low word by the caller)
/// through tables `BASE+7 .. BASE`.
#[inline(always)]
fn lane8<const BASE: usize>(lo: u32, hi: u32) -> u32 {
    TABLES[BASE + 7][(lo & 0xFF) as usize]
        ^ TABLES[BASE + 6][((lo >> 8) & 0xFF) as usize]
        ^ TABLES[BASE + 5][((lo >> 16) & 0xFF) as usize]
        ^ TABLES[BASE + 4][(lo >> 24) as usize]
        ^ TABLES[BASE + 3][(hi & 0xFF) as usize]
        ^ TABLES[BASE + 2][((hi >> 8) & 0xFF) as usize]
        ^ TABLES[BASE + 1][((hi >> 16) & 0xFF) as usize]
        ^ TABLES[BASE][(hi >> 24) as usize]
}

/// Portable slicing-by-16 tier — the dispatch fallback, exported so the
/// differential tests and the kernel ablation bench can cross-check it
/// against the hardware tier on the same inputs.
#[inline]
pub fn crc32c_update_slicing16(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    // Slice-by-16: the two 8-byte halves fold through disjoint table
    // ranges, so their lookups have no data dependency on each other.
    let mut chunks16 = data.chunks_exact(16);
    for c in &mut chunks16 {
        let a = lane8::<8>(le_u32(c, 0) ^ crc, le_u32(c, 4));
        let b = lane8::<0>(le_u32(c, 8), le_u32(c, 12));
        crc = a ^ b;
    }
    let rest = chunks16.remainder();
    let mut chunks8 = rest.chunks_exact(8);
    for c in &mut chunks8 {
        crc = lane8::<0>(le_u32(c, 0) ^ crc, le_u32(c, 4));
    }
    for &b in chunks8.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Hardware (SSE4.2) tier, when this CPU has it — `None` otherwise.
/// Ignores the `MEMTREE_KERNELS` policy on purpose: the differential
/// tier tests cross-check hardware against portable even in scalar mode.
#[cfg(target_arch = "x86_64")]
pub fn crc32c_update_hw(state: u32, data: &[u8]) -> Option<u32> {
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: SSE4.2 presence was verified at runtime just above.
        Some(unsafe { hw::update(state, data) })
    } else {
        None
    }
}

/// Continues a CRC32C computation. `state` is the running CRC as returned
/// by a previous call (start from [`crc32c`] semantics with `!0`).
/// Dispatches once per process to the hardware or portable tier.
#[inline]
pub fn crc32c_update(state: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if hw_enabled() {
        // SAFETY: SSE4.2 presence was verified by the cached dispatch.
        return unsafe { hw::update(state, data) };
    }
    crc32c_update_slicing16(state, data)
}

/// CRC32C of `data` (init `!0`, final xor `!0` — the standard iSCSI form).
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    !crc32c_update(!0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors, against the dispatched form and
        // both tiers explicitly.
        let cases: [(&[u8], u32); 5] = [
            (b"", 0),
            (b"123456789", 0xE306_9283),
            (&[0u8; 32], 0x8A91_36AA),
            (&[0xFFu8; 32], 0x62A8_AB43),
            (&(0u8..32).collect::<Vec<u8>>(), 0x46DD_794E),
        ];
        for (data, expect) in cases {
            assert_eq!(crc32c(data), expect);
            assert_eq!(!crc32c_update_slicing16(!0, data), expect);
            #[cfg(target_arch = "x86_64")]
            if let Some(hw) = crc32c_update_hw(!0, data) {
                assert_eq!(!hw, expect);
            }
        }
        // RFC 3720 "32 bytes decrementing" vector.
        let dec: Vec<u8> = (0..32u8).rev().collect();
        assert_eq!(crc32c(&dec), 0x113F_DB5C);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let state = crc32c_update(!0, &data[..split]);
            let state = crc32c_update(state, &data[split..]);
            assert_eq!(!state, crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        let base = crc32c(&data);
        let mut flipped = data.clone();
        for byte in 0..data.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip {byte}.{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn zeros_matrix_matches_table_driven_zero_feed() {
        // The GF(2) shift operator must agree with literally feeding zero
        // bytes through the portable kernel, for every length class the
        // streamed tier uses.
        for len in [1usize, 7, 8, 63, 64, 65, 256, 1024] {
            let t = zeros_table(len);
            let zeros = vec![0u8; len];
            for state in [0u32, !0, 0xDEAD_BEEF, 0x0000_0001, 0x8000_0000] {
                let expect = crc32c_update_slicing16(state, &zeros);
                let got = t[0][(state & 0xFF) as usize]
                    ^ t[1][((state >> 8) & 0xFF) as usize]
                    ^ t[2][((state >> 16) & 0xFF) as usize]
                    ^ t[3][(state >> 24) as usize];
                assert_eq!(got, expect, "len {len} state {state:#x}");
            }
        }
    }

    /// Differential sweep: the hardware tier (when present) must produce
    /// byte-identical checksums to slicing-by-16 across lengths 0..512 at
    /// all 8 byte alignments, and across lengths that exercise the short
    /// (3 × 64) and long (3 × 1024) streamed three-way paths.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hw_matches_slicing16_across_lengths_and_alignments() {
        let Some(_) = crc32c_update_hw(!0, b"") else {
            eprintln!("skipping: no SSE4.2 on this host");
            return;
        };
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let backing: Vec<u8> = (0..16 * 1024)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let mut lengths: Vec<usize> = (0..512).collect();
        // Streamed-path lengths: around 3*SHORT (192), 3*LONG (3072), and
        // a mixed long+short+scalar tail.
        lengths.extend([191, 192, 193, 575, 3071, 3072, 3073, 3072 + 192 + 13, 9216, 12 * 1024 + 7]);
        for align in 0..8usize {
            for &len in &lengths {
                let data = &backing[align..align + len];
                let sw = crc32c_update_slicing16(0xABCD_1234, data);
                let hw = crc32c_update_hw(0xABCD_1234, data).unwrap();
                assert_eq!(hw, sw, "len {len} align {align}");
            }
        }
    }

    /// Streamed-path incremental states: splitting inside a three-way
    /// chunk must agree with one-shot on both tiers.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hw_incremental_splits_inside_streams() {
        if crc32c_update_hw(!0, b"").is_none() {
            return;
        }
        let data: Vec<u8> = (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let oneshot = crc32c_update_slicing16(!0, &data);
        for split in [1usize, 100, 191, 192, 193, 3071, 3072, 3073, 5000, 9999] {
            let s = crc32c_update_hw(!0, &data[..split]).unwrap();
            let s = crc32c_update_hw(s, &data[split..]).unwrap();
            assert_eq!(s, oneshot, "hw split {split}");
        }
    }
}
