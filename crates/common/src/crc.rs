//! CRC32C (Castagnoli) — the checksum used to frame every compressed
//! block and anti-cache block.
//!
//! Implemented from scratch (no external crates): a compile-time 16 × 256
//! slicing table driving a slice-by-16 kernel (two independent 8-byte
//! lanes per step for instruction-level parallelism), with a
//! byte-at-a-time tail.
//! CRC32C detects all single-bit errors and all burst errors up to 32 bits,
//! which is exactly the corruption model of DESIGN.md's fault section.

/// The reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn byte_crc(mut b: u32) -> u32 {
    let mut k = 0;
    while k < 8 {
        b = if b & 1 != 0 { (b >> 1) ^ POLY } else { b >> 1 };
        k += 1;
    }
    b
}

const fn make_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        t[0][i] = byte_crc(i as u32);
        i += 1;
    }
    let mut s = 1;
    while s < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[s - 1][i];
            t[s][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

static TABLES: [[u32; 256]; 16] = make_tables();

/// One 8-byte lane: folds `crc` (XORed into the low word by the caller)
/// through tables `BASE+7 .. BASE`.
#[inline(always)]
fn lane8<const BASE: usize>(lo: u32, hi: u32) -> u32 {
    TABLES[BASE + 7][(lo & 0xFF) as usize]
        ^ TABLES[BASE + 6][((lo >> 8) & 0xFF) as usize]
        ^ TABLES[BASE + 5][((lo >> 16) & 0xFF) as usize]
        ^ TABLES[BASE + 4][(lo >> 24) as usize]
        ^ TABLES[BASE + 3][(hi & 0xFF) as usize]
        ^ TABLES[BASE + 2][((hi >> 8) & 0xFF) as usize]
        ^ TABLES[BASE + 1][((hi >> 16) & 0xFF) as usize]
        ^ TABLES[BASE][(hi >> 24) as usize]
}

#[inline]
fn le_u32(c: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([c[at], c[at + 1], c[at + 2], c[at + 3]])
}

/// Continues a CRC32C computation. `state` is the running CRC as returned
/// by a previous call (start from [`crc32c`] semantics with `!0`).
#[inline]
pub fn crc32c_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    // Slice-by-16: the two 8-byte halves fold through disjoint table
    // ranges, so their lookups have no data dependency on each other.
    let mut chunks16 = data.chunks_exact(16);
    for c in &mut chunks16 {
        let a = lane8::<8>(le_u32(c, 0) ^ crc, le_u32(c, 4));
        let b = lane8::<0>(le_u32(c, 8), le_u32(c, 12));
        crc = a ^ b;
    }
    let rest = chunks16.remainder();
    let mut chunks8 = rest.chunks_exact(8);
    for c in &mut chunks8 {
        crc = lane8::<0>(le_u32(c, 0) ^ crc, le_u32(c, 4));
    }
    for &b in chunks8.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32C of `data` (init `!0`, final xor `!0` — the standard iSCSI form).
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    !crc32c_update(!0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let inc: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&inc), 0x46DD_794E);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let state = crc32c_update(!0, &data[..split]);
            let state = crc32c_update(state, &data[split..]);
            assert_eq!(!state, crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        let base = crc32c(&data);
        let mut flipped = data.clone();
        for byte in 0..data.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip {byte}.{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
