//! The workspace-wide error taxonomy.
//!
//! Fallible paths (block decode, hybrid merges, anti-cache fetches) return
//! [`MemtreeError`] instead of panicking, so a single corrupt block or an
//! injected fault degrades one operation rather than the whole process.
//! DESIGN.md §"Fault model & error taxonomy" documents where each variant
//! can surface.

/// Convenience alias used by fallible memtree APIs.
pub type Result<T> = std::result::Result<T, MemtreeError>;

/// The typed failure modes of the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemtreeError {
    /// A checksummed block failed validation (bad magic, inconsistent
    /// lengths, CRC mismatch, or an undecodable payload). The data behind
    /// it must not be trusted.
    Corruption {
        /// Which subsystem detected the corruption (e.g. `"block-frame"`,
        /// `"anti-cache"`).
        context: &'static str,
        /// Human-readable detail (what check failed).
        detail: String,
    },
    /// A fault-injection point fired (testing only; never produced in
    /// production configurations).
    Injected {
        /// The name of the injection point that fired.
        point: String,
    },
    /// A hybrid-index merge failed after exhausting its retry budget. The
    /// index remains fully readable in its pre-merge state.
    MergeFailed {
        /// Merge attempts made before giving up.
        attempts: u32,
    },
    /// An anti-cache block was quarantined after failing validation;
    /// tuples stored in it are unreachable until reloaded.
    Quarantined {
        /// The quarantined block id.
        block: u32,
    },
    /// An allocation or capacity limit was exceeded.
    Allocation {
        /// The size of the request that failed, in bytes.
        bytes: usize,
    },
    /// The storage device is out of space. The write was not applied (not
    /// even partially); freeing space and retrying the same operation is
    /// always safe.
    Enospc {
        /// Which write path hit the limit (e.g. `"block-write"`, `"wal"`).
        context: &'static str,
        /// Bytes the rejected write asked for.
        requested: usize,
    },
    /// A transient I/O failure (bus glitch, dropped request): the stored
    /// data is intact and a retry may succeed. Never quarantine on this.
    TransientIo {
        /// Which path observed the fault.
        context: &'static str,
    },
    /// The engine is in its write-slowdown band (compaction debt is
    /// accumulating faster than it drains). The write was **not** applied;
    /// retrying after roughly `suggested_wait_us` virtual microseconds is
    /// expected to succeed once a compaction step has run.
    Backpressure {
        /// Suggested wait before retrying, in (virtual) microseconds.
        suggested_wait_us: u64,
    },
    /// The engine hit its write-stop band: debt exceeded the hard trigger
    /// and a bounded relief attempt did not clear it. The write was not
    /// applied and the call returned immediately (never an unbounded
    /// block); the caller must drain debt (compaction steps / flush) or
    /// wait before retrying.
    Stalled {
        /// L0 run count at rejection time.
        l0_runs: usize,
        /// MemTable bytes at rejection time.
        memtable_bytes: usize,
    },
    /// The request's deadline expired before the work was applied. Work
    /// already made durable is never cancelled; only queued (not yet
    /// applied) work is dropped with this error.
    DeadlineExceeded {
        /// The deadline's total budget, in (virtual) microseconds.
        budget_us: u64,
    },
    /// A row or value failed a schema expectation (wrong column type, a
    /// non-indexable value in a key column). The operation was rejected;
    /// the process and its worker threads keep serving.
    Schema {
        /// Which accessor or encoder rejected the value.
        context: &'static str,
        /// The type the schema expected.
        expected: &'static str,
        /// Debug rendering of the offending value.
        got: String,
    },
}

impl std::fmt::Display for MemtreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemtreeError::Corruption { context, detail } => {
                write!(f, "corruption detected in {context}: {detail}")
            }
            MemtreeError::Injected { point } => {
                write!(f, "injected fault at `{point}`")
            }
            MemtreeError::MergeFailed { attempts } => {
                write!(f, "hybrid merge failed after {attempts} attempt(s)")
            }
            MemtreeError::Quarantined { block } => {
                write!(f, "anti-cache block {block} is quarantined")
            }
            MemtreeError::Allocation { bytes } => {
                write!(f, "allocation of {bytes} bytes failed")
            }
            MemtreeError::Enospc { context, requested } => {
                write!(f, "no space left on device: {context} write of {requested} bytes")
            }
            MemtreeError::TransientIo { context } => {
                write!(f, "transient I/O failure in {context} (retry may succeed)")
            }
            MemtreeError::Backpressure { suggested_wait_us } => {
                write!(
                    f,
                    "write slowdown (compaction debt): retry in ~{suggested_wait_us}us"
                )
            }
            MemtreeError::Stalled { l0_runs, memtable_bytes } => {
                write!(
                    f,
                    "write stalled: {l0_runs} L0 runs, {memtable_bytes} memtable bytes over the stop trigger"
                )
            }
            MemtreeError::DeadlineExceeded { budget_us } => {
                write!(f, "deadline of {budget_us}us exceeded before the request was applied")
            }
            MemtreeError::Schema { context, expected, got } => {
                write!(f, "schema violation in {context}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for MemtreeError {}

impl MemtreeError {
    /// Shorthand for a [`MemtreeError::Corruption`].
    pub fn corruption(context: &'static str, detail: impl Into<String>) -> Self {
        MemtreeError::Corruption {
            context,
            detail: detail.into(),
        }
    }

    /// True for variants that indicate untrustworthy data (as opposed to
    /// transient failures that a retry may clear).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            MemtreeError::Corruption { .. } | MemtreeError::Quarantined { .. }
        )
    }

    /// True for failures an immediate retry may clear (the stored data is
    /// intact). Drives the bounded-backoff retry loops: transient faults
    /// are retried and must never quarantine a block; everything else
    /// (corruption, ENOSPC, injected crashes) propagates typed.
    pub fn is_transient(&self) -> bool {
        matches!(self, MemtreeError::TransientIo { .. })
    }

    /// True for overload rejections that a caller should retry *after
    /// waiting* (jittered backoff), as opposed to [`Self::is_transient`]
    /// faults where an immediate retry is fine. The rejected operation was
    /// never applied, so re-submitting the same call is always safe.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            MemtreeError::Backpressure { .. } | MemtreeError::Stalled { .. }
        )
    }

    /// Shorthand for a [`MemtreeError::Schema`].
    pub fn schema(context: &'static str, expected: &'static str, got: impl Into<String>) -> Self {
        MemtreeError::Schema {
            context,
            expected,
            got: got.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemtreeError::corruption("block-frame", "crc mismatch");
        assert!(e.to_string().contains("block-frame"));
        assert!(e.is_corruption());
        let e = MemtreeError::Injected {
            point: "hybrid.merge.build".into(),
        };
        assert!(!e.is_corruption());
        assert!(e.to_string().contains("hybrid.merge.build"));
    }

    #[test]
    fn transient_and_enospc_classification() {
        let t = MemtreeError::TransientIo { context: "sim-disk" };
        assert!(t.is_transient() && !t.is_corruption());
        let e = MemtreeError::Enospc { context: "block-write", requested: 4096 };
        assert!(!e.is_transient() && !e.is_corruption());
        assert!(e.to_string().contains("no space left"));
        assert!(!MemtreeError::corruption("x", "y").is_transient());
    }

    #[test]
    fn overload_and_schema_classification() {
        let b = MemtreeError::Backpressure { suggested_wait_us: 250 };
        assert!(b.is_overload() && !b.is_transient() && !b.is_corruption());
        assert!(b.to_string().contains("250"));
        let s = MemtreeError::Stalled { l0_runs: 9, memtable_bytes: 4096 };
        assert!(s.is_overload() && !s.is_corruption());
        assert!(s.to_string().contains("9 L0 runs"));
        let d = MemtreeError::DeadlineExceeded { budget_us: 1000 };
        assert!(!d.is_overload() && !d.is_transient() && !d.is_corruption());
        assert!(d.to_string().contains("1000us"));
        let e = MemtreeError::schema("val-accessor", "I64", "Str(\"x\")");
        assert!(!e.is_overload() && !e.is_corruption() && !e.is_transient());
        assert!(e.to_string().contains("expected I64"));
    }
}
