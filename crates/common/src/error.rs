//! The workspace-wide error taxonomy.
//!
//! Fallible paths (block decode, hybrid merges, anti-cache fetches) return
//! [`MemtreeError`] instead of panicking, so a single corrupt block or an
//! injected fault degrades one operation rather than the whole process.
//! DESIGN.md §"Fault model & error taxonomy" documents where each variant
//! can surface.

/// Convenience alias used by fallible memtree APIs.
pub type Result<T> = std::result::Result<T, MemtreeError>;

/// The typed failure modes of the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemtreeError {
    /// A checksummed block failed validation (bad magic, inconsistent
    /// lengths, CRC mismatch, or an undecodable payload). The data behind
    /// it must not be trusted.
    Corruption {
        /// Which subsystem detected the corruption (e.g. `"block-frame"`,
        /// `"anti-cache"`).
        context: &'static str,
        /// Human-readable detail (what check failed).
        detail: String,
    },
    /// A fault-injection point fired (testing only; never produced in
    /// production configurations).
    Injected {
        /// The name of the injection point that fired.
        point: String,
    },
    /// A hybrid-index merge failed after exhausting its retry budget. The
    /// index remains fully readable in its pre-merge state.
    MergeFailed {
        /// Merge attempts made before giving up.
        attempts: u32,
    },
    /// An anti-cache block was quarantined after failing validation;
    /// tuples stored in it are unreachable until reloaded.
    Quarantined {
        /// The quarantined block id.
        block: u32,
    },
    /// An allocation or capacity limit was exceeded.
    Allocation {
        /// The size of the request that failed, in bytes.
        bytes: usize,
    },
    /// The storage device is out of space. The write was not applied (not
    /// even partially); freeing space and retrying the same operation is
    /// always safe.
    Enospc {
        /// Which write path hit the limit (e.g. `"block-write"`, `"wal"`).
        context: &'static str,
        /// Bytes the rejected write asked for.
        requested: usize,
    },
    /// A transient I/O failure (bus glitch, dropped request): the stored
    /// data is intact and a retry may succeed. Never quarantine on this.
    TransientIo {
        /// Which path observed the fault.
        context: &'static str,
    },
}

impl std::fmt::Display for MemtreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemtreeError::Corruption { context, detail } => {
                write!(f, "corruption detected in {context}: {detail}")
            }
            MemtreeError::Injected { point } => {
                write!(f, "injected fault at `{point}`")
            }
            MemtreeError::MergeFailed { attempts } => {
                write!(f, "hybrid merge failed after {attempts} attempt(s)")
            }
            MemtreeError::Quarantined { block } => {
                write!(f, "anti-cache block {block} is quarantined")
            }
            MemtreeError::Allocation { bytes } => {
                write!(f, "allocation of {bytes} bytes failed")
            }
            MemtreeError::Enospc { context, requested } => {
                write!(f, "no space left on device: {context} write of {requested} bytes")
            }
            MemtreeError::TransientIo { context } => {
                write!(f, "transient I/O failure in {context} (retry may succeed)")
            }
        }
    }
}

impl std::error::Error for MemtreeError {}

impl MemtreeError {
    /// Shorthand for a [`MemtreeError::Corruption`].
    pub fn corruption(context: &'static str, detail: impl Into<String>) -> Self {
        MemtreeError::Corruption {
            context,
            detail: detail.into(),
        }
    }

    /// True for variants that indicate untrustworthy data (as opposed to
    /// transient failures that a retry may clear).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            MemtreeError::Corruption { .. } | MemtreeError::Quarantined { .. }
        )
    }

    /// True for failures an immediate retry may clear (the stored data is
    /// intact). Drives the bounded-backoff retry loops: transient faults
    /// are retried and must never quarantine a block; everything else
    /// (corruption, ENOSPC, injected crashes) propagates typed.
    pub fn is_transient(&self) -> bool {
        matches!(self, MemtreeError::TransientIo { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemtreeError::corruption("block-frame", "crc mismatch");
        assert!(e.to_string().contains("block-frame"));
        assert!(e.is_corruption());
        let e = MemtreeError::Injected {
            point: "hybrid.merge.build".into(),
        };
        assert!(!e.is_corruption());
        assert!(e.to_string().contains("hybrid.merge.build"));
    }

    #[test]
    fn transient_and_enospc_classification() {
        let t = MemtreeError::TransientIo { context: "sim-disk" };
        assert!(t.is_transient() && !t.is_corruption());
        let e = MemtreeError::Enospc { context: "block-write", requested: 4096 };
        assert!(!e.is_transient() && !e.is_corruption());
        assert!(e.to_string().contains("no space left"));
        assert!(!MemtreeError::corruption("x", "y").is_transient());
    }
}
