//! A tiny, deterministic, dependency-free property-test harness.
//!
//! Replaces the external `proptest` crate so the workspace builds and
//! tests fully offline. The trade-offs are deliberate: generation is a
//! seeded SplitMix64 stream (reproducible by construction — a failure
//! message names the seed and case), and there is no shrinking; suites
//! keep inputs small instead so failing cases are directly readable.
//!
//! ```
//! use memtree_common::check::{prop_check, Gen};
//!
//! prop_check("reverse_involutive", 64, |g: &mut Gen| {
//!     let v = g.bytes_vec(0..50);
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     if w == v { Ok(()) } else { Err(format!("{v:?} != {w:?}")) }
//! });
//! ```

use crate::hash::splitmix64;
use std::ops::Range;

/// A seeded pseudo-random generator for property-test inputs.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // One mixing step so nearby seeds diverge immediately.
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        splitmix64(&mut state);
        Self { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[range.start, range.end)`. Panics on an empty range.
    #[inline]
    pub fn range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.u64() as usize) % (range.end - range.start)
    }

    /// Uniform `i64` in `[0, n)`.
    #[inline]
    pub fn i64_below(&mut self, n: i64) -> i64 {
        (self.u64() % n.max(1) as u64) as i64
    }

    /// A coin flip with probability `p` of `true`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        (self.u64() as f64 / u64::MAX as f64) < p
    }

    /// One element of a slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0..xs.len())]
    }

    /// A byte vector with length drawn from `len`, bytes uniform over 0–255.
    pub fn bytes_vec(&mut self, len: Range<usize>) -> Vec<u8> {
        let n = self.range_or_zero(len);
        (0..n).map(|_| self.u64() as u8).collect()
    }

    /// A byte vector with length drawn from `len`, bytes drawn from
    /// `alphabet` — small alphabets maximize prefix/boundary collisions,
    /// the same trick the proptest suites used.
    pub fn bytes_from(&mut self, alphabet: &[u8], len: Range<usize>) -> Vec<u8> {
        let n = self.range_or_zero(len);
        (0..n).map(|_| *self.pick(alphabet)).collect()
    }

    /// A `Vec<bool>` with length drawn from `len`.
    pub fn bools(&mut self, len: Range<usize>) -> Vec<bool> {
        let n = self.range_or_zero(len);
        (0..n).map(|_| self.u64() & 1 == 1).collect()
    }

    /// Like [`Gen::range`] but an empty/zero-width start is allowed
    /// (`0..0` yields 0).
    fn range_or_zero(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            range.start
        } else {
            self.range(range)
        }
    }
}

/// Default seed for [`prop_check`]; override per-suite via
/// [`prop_check_seeded`] or the `MEMTREE_CHECK_SEED` environment variable
/// to replay a reported failure.
pub const DEFAULT_SEED: u64 = 0x5EED_0000_0000_0001;

/// Runs `f` against `cases` deterministic generated inputs. On `Err`, panics
/// naming the property, the seed, and the case index so the failure replays
/// exactly.
pub fn prop_check<F>(name: &str, cases: u64, f: F)
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    let seed = std::env::var("MEMTREE_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    prop_check_seeded(name, seed, cases, f)
}

/// [`prop_check`] with an explicit base seed.
pub fn prop_check_seeded<F>(name: &str, seed: u64, cases: u64, mut f: F)
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    for case in 0..cases {
        // Each case gets an independent stream so one case's draw count
        // doesn't perturb the next.
        let mut g = Gen::new(seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        if let Err(msg) = f(&mut g) {
            panic!(
                "property `{name}` failed (seed {seed:#x}, case {case}/{cases}): {msg}\n\
                 replay: MEMTREE_CHECK_SEED={seed} with the same case index"
            );
        }
    }
}

/// `assert_eq!`-style helper that returns `Err(String)` instead of
/// panicking, for use inside [`prop_check`] closures.
#[macro_export]
macro_rules! check_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{:?} != {:?} [{} vs {}]",
                a,
                b,
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{:?} != {:?} [{} vs {}]: {}",
                a,
                b,
                stringify!($a),
                stringify!($b),
                format!($($fmt)+)
            ));
        }
    }};
}

/// `assert!`-style helper returning `Err(String)` for [`prop_check`] closures.
#[macro_export]
macro_rules! check {
    ($cond:expr $(, $($fmt:tt)+)?) => {{
        if !$cond {
            #[allow(unused_mut)]
            let mut msg = format!("check failed: {}", stringify!($cond));
            $(msg = format!("{}: {}", msg, format!($($fmt)+));)?
            return Err(msg);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        let va = Gen::new(9).bytes_vec(10..20);
        let vb = Gen::new(9).bytes_vec(10..20);
        assert_eq!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::new(3);
        for _ in 0..1000 {
            let x = g.range(5..9);
            assert!((5..9).contains(&x));
            let v = g.bytes_from(b"abc", 0..4);
            assert!(v.len() < 4);
            assert!(v.iter().all(|b| b"abc".contains(b)));
        }
    }

    #[test]
    fn prop_check_runs_all_cases() {
        let mut n = 0;
        prop_check_seeded("counter", 1, 25, |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 25);
    }

    #[test]
    #[should_panic(expected = "property `boom` failed")]
    fn prop_check_reports_failures() {
        prop_check_seeded("boom", 1, 5, |g| {
            if g.u64() % 2 == 0 || true {
                Err("forced".into())
            } else {
                Ok(())
            }
        });
    }
}
