//! A fixed-length bit set used for positional batch answers.
//!
//! [`BitSet`] is the return type of `PointFilter::may_contain_batch`: bit
//! `i` answers input key `i`. It is a thin `Vec<u64>` with no growth — the
//! length is fixed at construction so positional semantics can't drift.

/// Fixed-length set of bits, one per batch position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zeros bit set of `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-ones bit set of `len` bits.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        // Clear the tail bits past `len` so `count_ones` stays exact.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Number of bits (the batch length, not the population count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "BitSet::set out of range: {i} >= {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "BitSet::clear out of range: {i} >= {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "BitSet::get out of range: {i} >= {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Population count: how many bits are set.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 8);
        s.clear(64);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 7);
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 65, 127, 128, 129]);
    }

    #[test]
    fn full_masks_tail() {
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count_ones(), len, "len={len}");
            assert_eq!(s.iter_ones().count(), len);
        }
        let s = BitSet::full(3);
        assert!(s.get(0) && s.get(1) && s.get(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_len_panics() {
        let s = BitSet::new(10);
        s.get(10);
    }
}
