//! Shared foundations for the `memtree` workspace.
//!
//! This crate defines the vocabulary types used throughout the
//! reproduction of *Memory-Efficient Search Trees for Database Management
//! Systems*:
//!
//! * [`traits`] — the [`OrderedIndex`] / [`StaticIndex`] abstractions that
//!   every search
//!   tree in the workspace implements, plus the filter traits used by the
//!   LSM engine.
//! * [`key`] — order-preserving key encodings (integers ↔ byte strings)
//!   and byte-string helpers (successors, common prefixes).
//! * [`hash`] — 64-bit mixing/hash functions used by Bloom filters and
//!   SuRF-Hash (no external hash crates are used).
//! * [`mem`] — lightweight heap-size accounting helpers.
//! * [`probe`] — software profiling counters standing in for the PAPI
//!   hardware counters of Table 2.2.
//! * [`error`] — the typed error taxonomy ([`MemtreeError`]) returned by
//!   fallible paths (block decode, merges, anti-cache fetches).
//! * [`crc`] — from-scratch, runtime-dispatched CRC32C (SSE4.2 hardware
//!   tier + portable slicing-by-16) used to frame compressed blocks.
//! * [`dispatch`] — the process-wide `MEMTREE_KERNELS` kernel-dispatch
//!   policy consulted by every hardware-accelerated kernel.
//! * [`check`] — a deterministic, dependency-free property-test harness
//!   (seeded generator + `prop_check`), replacing the external `proptest`.
//! * [`snapshot`] — [`SnapshotCell`], epoch-stamped `Arc`-swap snapshot
//!   publication (readers never block behind writers).

#![warn(missing_docs)]

pub mod bitset;
pub mod check;
pub mod crc;
pub mod dispatch;
pub mod error;
pub mod hash;
pub mod key;
pub mod mem;
pub mod probe;
pub mod snapshot;
pub mod traits;

pub use bitset::BitSet;
pub use crc::{crc32c, crc32c_update, crc32c_update_slicing16};
pub use dispatch::{hardware_allowed, kernel_mode, KernelMode};
pub use error::MemtreeError;
pub use snapshot::SnapshotCell;
pub use traits::{
    multi_scan_merged, BatchProbe, OrderedIndex, PointFilter, RangeFilter, StaticIndex, Value,
};
