//! Heap-size accounting helpers.
//!
//! The thesis reports index memory as the bytes the data structure
//! allocates (excluding the tuples values point at). Each index implements
//! `mem_usage()` by summing its allocations with these helpers, which keeps
//! the accounting consistent across crates.

/// Heap bytes owned by a `Vec<T>` for `Copy`-style payloads: `capacity * size_of::<T>()`.
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes owned by a `Vec<Vec<u8>>` including the inner buffers.
pub fn vec_of_bytes(v: &Vec<Vec<u8>>) -> usize {
    vec_bytes(v) + v.iter().map(|b| b.capacity()).sum::<usize>()
}

/// Heap bytes of a boxed slice.
#[inline]
pub fn boxed_slice_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_accounting_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
    }

    #[test]
    fn nested_accounting() {
        let v = vec![vec![0u8; 10], vec![0u8; 20]];
        assert!(vec_of_bytes(&v) >= 30 + 2 * std::mem::size_of::<Vec<u8>>());
    }
}
