//! Software probe statistics — the stand-in for Table 2.2's PAPI counters.
//!
//! We cannot read hardware instruction/cache-miss counters portably, so the
//! instrumented query paths count software events that track the same
//! quantities: node visits approximate cache-line touches, key-byte
//! comparisons approximate instruction volume, and pointer dereferences
//! approximate dependent loads (the pointer-chasing the D-to-S rules
//! eliminate).

/// Counters collected by an instrumented point query.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Tree nodes touched (≈ cache lines / L1 misses proxy).
    pub nodes_visited: u64,
    /// Individual key bytes compared (≈ instruction count proxy).
    pub key_bytes_compared: u64,
    /// Pointer dereferences following child/sibling links (≈ dependent
    /// loads, the latency-bound operation).
    pub pointer_derefs: u64,
}

impl ProbeStats {
    /// Accumulates another probe's counters into this one.
    pub fn add(&mut self, other: &ProbeStats) {
        self.nodes_visited += other.nodes_visited;
        self.key_bytes_compared += other.key_bytes_compared;
        self.pointer_derefs += other.pointer_derefs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate() {
        let mut a = ProbeStats {
            nodes_visited: 1,
            key_bytes_compared: 2,
            pointer_derefs: 3,
        };
        a.add(&ProbeStats {
            nodes_visited: 10,
            key_bytes_compared: 20,
            pointer_derefs: 30,
        });
        assert_eq!(a.nodes_visited, 11);
        assert_eq!(a.key_bytes_compared, 22);
        assert_eq!(a.pointer_derefs, 33);
    }
}
