//! Workspace-wide kernel dispatch policy.
//!
//! Every runtime-dispatched kernel in the workspace (hardware CRC32C in
//! [`crate::crc`], the PDEP/SSE2/popcnt tiers in `memtree_succinct`)
//! consults one policy knob before consulting the CPU: the
//! `MEMTREE_KERNELS` environment variable. Setting it to `scalar` (or
//! `portable`) pins every dispatch to its portable software tier, so the
//! fallback paths that normally only run on feature-less hardware can be
//! exercised — and CI does exercise them — on any machine. Any other
//! value (or none) means "auto": use whatever the CPU offers.
//!
//! The variable is read once per process; flipping it after the first
//! dispatch has no effect (dispatch results are cached in the kernels
//! themselves for the same reason).

use std::sync::OnceLock;

/// How runtime kernel dispatch should behave for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Use hardware tiers when CPU feature detection finds them.
    Auto,
    /// Pin every kernel to its portable (scalar/SWAR) tier.
    Scalar,
}

/// The process-wide kernel mode, read once from `MEMTREE_KERNELS`.
pub fn kernel_mode() -> KernelMode {
    static MODE: OnceLock<KernelMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MEMTREE_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") || v.eq_ignore_ascii_case("portable") => {
            KernelMode::Scalar
        }
        _ => KernelMode::Auto,
    })
}

/// True when hardware kernel tiers are allowed (mode is [`KernelMode::Auto`]).
#[inline]
pub fn hardware_allowed() -> bool {
    kernel_mode() == KernelMode::Auto
}
