//! 64-bit hash functions implemented from scratch.
//!
//! The thesis's SuRF-Hash and the RocksDB-style Bloom filter both need a
//! high-quality 64-bit string hash. We implement a Murmur3-style
//! fetch-and-mix hash plus the `fmix64`/SplitMix finalizers; no external
//! hashing crates are used.

/// MurmurHash3's 64-bit finalizer (`fmix64`). A strong bijective mixer.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

/// SplitMix64 step: turns a counter into a well-distributed u64. Used for
/// deterministic pseudo-random sequences in tests and workloads.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// 64-bit string hash (Murmur-style: 8-byte blocks, multiply-rotate mixing,
/// `fmix64` finalizer) with a seed. Deterministic across runs.
pub fn hash64_seed(data: &[u8], seed: u64) -> u64 {
    const C1: u64 = 0x87c37b91114253d5;
    const C2: u64 = 0x4cf5ad432745937f;
    let mut h = seed ^ (data.len() as u64).wrapping_mul(C1);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let mut k = u64::from_le_bytes(chunk.try_into().unwrap());
        k = k.wrapping_mul(C1);
        k = k.rotate_left(31);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(27).wrapping_mul(5).wrapping_add(0x52dce729);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        let mut k = u64::from_le_bytes(buf);
        k = k.wrapping_mul(C1);
        k = k.rotate_left(31);
        k = k.wrapping_mul(C2);
        h ^= k;
    }
    fmix64(h)
}

/// 64-bit string hash with the default seed.
#[inline]
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seed(data, 0x9ae16a3b2f90404f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"hello"), hash64(b"hello"));
        assert_ne!(hash64(b"hello"), hash64(b"hellp"));
        assert_ne!(hash64_seed(b"hello", 1), hash64_seed(b"hello", 2));
    }

    #[test]
    fn fmix64_bijective_on_samples() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(fmix64(i)));
        }
    }

    #[test]
    fn low_bits_well_distributed() {
        // Sequential keys must not collide in the low bits after hashing;
        // a Bloom filter depends on this.
        let mut buckets = [0u32; 64];
        for i in 0..64_000u64 {
            let h = hash64(&i.to_be_bytes());
            buckets[(h % 64) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        // Perfectly uniform would be 1000 per bucket; allow ±20%.
        assert!(min > 800 && max < 1200, "min={min} max={max}");
    }

    #[test]
    fn empty_and_short_inputs() {
        // Must not panic and must differ.
        let h0 = hash64(b"");
        let h1 = hash64(b"a");
        let h7 = hash64(b"abcdefg");
        let h8 = hash64(b"abcdefgh");
        let h9 = hash64(b"abcdefghi");
        let all = [h0, h1, h7, h8, h9];
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
