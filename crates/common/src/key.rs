//! Order-preserving key encodings and byte-string helpers.
//!
//! All trees in the workspace index raw byte strings compared
//! lexicographically. Unsigned integers are mapped to 8-byte big-endian
//! strings, which preserves numeric order; this mirrors how the thesis
//! feeds YCSB's 64-bit integer keys to trie-based indexes.

/// Encodes a `u64` as its order-preserving 8-byte big-endian representation.
#[inline]
pub fn encode_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decodes the first 8 bytes of `k` as a big-endian `u64`.
///
/// # Panics
/// Panics if `k` is shorter than 8 bytes.
#[inline]
pub fn decode_u64(k: &[u8]) -> u64 {
    u64::from_be_bytes(k[..8].try_into().expect("key shorter than 8 bytes"))
}

/// Length of the longest common prefix of `a` and `b`.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// The smallest byte string strictly greater than `key`: `key ++ [0x00]`.
pub fn successor(key: &[u8]) -> Vec<u8> {
    let mut s = Vec::with_capacity(key.len() + 1);
    s.extend_from_slice(key);
    s.push(0);
    s
}

/// The smallest byte string greater than every string having `key` as a
/// prefix — `key` with its last byte incremented (propagating carries, and
/// dropping trailing 0xFF bytes). Returns `None` when `key` is all-0xFF (no
/// such string exists).
///
/// This is the upper bound used by the thesis's email range queries:
/// `[K, K with last byte ++)`.
pub fn prefix_successor(key: &[u8]) -> Option<Vec<u8>> {
    let mut s = key.to_vec();
    while let Some(last) = s.last_mut() {
        if *last == 0xFF {
            s.pop();
        } else {
            *last += 1;
            return Some(s);
        }
    }
    None
}

/// Pads or truncates `key` to exactly `n` bytes (zero padding), used by
/// Masstree-style keyslice extraction.
#[inline]
pub fn keyslice(key: &[u8], level: usize) -> (u64, usize) {
    let start = level * 8;
    let mut buf = [0u8; 8];
    let mut n = 0;
    if start < key.len() {
        n = (key.len() - start).min(8);
        buf[..n].copy_from_slice(&key[start..start + n]);
    }
    (u64::from_be_bytes(buf), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_and_order() {
        let vals = [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for &a in &vals {
            assert_eq!(decode_u64(&encode_u64(a)), a);
            for &b in &vals {
                assert_eq!(a.cmp(&b), encode_u64(a).cmp(&encode_u64(b)));
            }
        }
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(b"abc", b"abd"), 2);
        assert_eq!(common_prefix_len(b"abc", b"abc"), 3);
        assert_eq!(common_prefix_len(b"", b"abc"), 0);
        assert_eq!(common_prefix_len(b"abc", b"abcd"), 3);
    }

    #[test]
    fn successor_is_strictly_greater_and_tight() {
        let k = b"foo".to_vec();
        let s = successor(&k);
        assert!(s.as_slice() > k.as_slice());
        // Nothing fits strictly between k and its successor.
        assert_eq!(s, b"foo\x00".to_vec());
    }

    #[test]
    fn prefix_successor_basic() {
        assert_eq!(prefix_successor(b"abc").unwrap(), b"abd".to_vec());
        assert_eq!(prefix_successor(b"ab\xff").unwrap(), b"ac".to_vec());
        assert_eq!(prefix_successor(b"\xff\xff"), None);
        // Every extension of "abc" is below prefix_successor("abc").
        let hi = prefix_successor(b"abc").unwrap();
        assert!(b"abc\xff\xff\xff".as_slice() < hi.as_slice());
        assert!(b"abd".as_slice() >= hi.as_slice());
    }

    #[test]
    fn keyslice_extraction() {
        let key = b"abcdefghij"; // 10 bytes
        let (s0, n0) = keyslice(key, 0);
        assert_eq!(n0, 8);
        assert_eq!(s0, u64::from_be_bytes(*b"abcdefgh"));
        let (s1, n1) = keyslice(key, 1);
        assert_eq!(n1, 2);
        assert_eq!(s1, u64::from_be_bytes(*b"ij\0\0\0\0\0\0"));
        let (s2, n2) = keyslice(key, 2);
        assert_eq!((s2, n2), (0, 0));
    }
}
