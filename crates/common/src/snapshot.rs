//! Epoch-stamped atomic snapshot publication.
//!
//! Generalizes the two snapshot-swap patterns already in the workspace —
//! the hybrid `DualStage` build-aside + atomic-swap merge and the LSM
//! manifest's atomic `CURRENT` swap — into one reusable cell: writers
//! build a new immutable snapshot off to the side and publish it with a
//! single pointer swap; readers `load` an `Arc` and keep reading their
//! snapshot for as long as they hold it, never blocking behind the
//! writer. An epoch counter advances on every publish so callers can
//! detect staleness (or assert monotonicity) without comparing contents.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A shared cell holding the current immutable snapshot of some state.
///
/// `load` is wait-free in practice (a read lock held only for an `Arc`
/// clone); `publish` holds the write lock only for the pointer swap, so
/// readers are never blocked behind snapshot *construction*, only behind
/// the O(1) swap itself.
pub struct SnapshotCell<T> {
    current: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell publishing `initial` as epoch 0.
    pub fn new(initial: T) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Returns the current snapshot. The returned `Arc` stays valid (and
    /// immutable) even after later `publish` calls replace it.
    pub fn load(&self) -> Arc<T> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Publishes a new snapshot, returning the new epoch.
    pub fn publish(&self, next: T) -> u64 {
        self.swap(Arc::new(next))
    }

    /// Publishes an already-`Arc`ed snapshot, returning the new epoch.
    pub fn swap(&self, next: Arc<T>) -> u64 {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        *slot = next;
        // The epoch bump happens under the write lock, so epochs observed
        // through `load` + `epoch` are monotone per snapshot.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The number of `publish`/`swap` calls so far (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch())
            .field("current", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_sees_latest_publish_and_epoch_advances() {
        let cell = SnapshotCell::new(vec![1u64]);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), vec![1]);
        let e = cell.publish(vec![1, 2]);
        assert_eq!(e, 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), vec![1, 2]);
    }

    #[test]
    fn old_snapshot_stays_valid_after_publish() {
        let cell = SnapshotCell::new(String::from("v0"));
        let old = cell.load();
        cell.publish(String::from("v1"));
        assert_eq!(*old, "v0");
        assert_eq!(*cell.load(), "v1");
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        // Snapshots are (n, n) pairs; a torn read would observe a pair
        // whose halves disagree.
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                thread::spawn(move || {
                    let mut last_epoch = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.0, snap.1, "torn snapshot");
                        let e = cell.epoch();
                        assert!(e >= last_epoch, "epoch went backwards");
                        last_epoch = e;
                    }
                })
            })
            .collect();
        for n in 1..500u64 {
            cell.publish((n, n));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 499);
    }
}
