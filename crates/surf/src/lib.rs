//! SuRF — the Succinct Range Filter (Chapter 4).
//!
//! SuRF turns the FST into an approximate-membership filter by storing
//! only each key's *minimum distinguishing prefix plus one byte*
//! (SuRF-Base), optionally augmented with per-key suffix bits:
//!
//! * **SuRF-Hash** — `n` low bits of a 64-bit key hash; cuts point-query
//!   FPR below `2^-n` but contributes nothing to range queries.
//! * **SuRF-Real** — the `n` key bits immediately following the stored
//!   prefix; helps both point and range queries, but is weaker per bit for
//!   points on correlated key sets.
//! * **SuRF-Mixed** — a hash part and a real part, stored adjacently so
//!   one fetch reads both.
//!
//! All operations guarantee **one-sided errors**: `false` means the
//! key/range is definitely absent; `count` over-counts by at most 2.

#![warn(missing_docs)]

use memtree_common::bitset::BitSet;
use memtree_common::error::{MemtreeError, Result};
use memtree_common::hash::hash64;
use memtree_common::mem::vec_bytes;
use memtree_common::traits::{PointFilter, RangeFilter};
use memtree_fst::{LookupResult, LoudsTrie, TrieIter, TrieOpts};

/// Which suffix bits a SuRF stores per key (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuffixConfig {
    /// SuRF-Base: no suffix bits.
    None,
    /// SuRF-Hash: `n` hashed bits per key (1..=32).
    Hash(u8),
    /// SuRF-Real: `n` real key bits per key (1..=32).
    Real(u8),
    /// SuRF-Mixed: hash bits then real bits.
    Mixed(u8, u8),
}

impl SuffixConfig {
    fn hash_bits(self) -> u32 {
        match self {
            SuffixConfig::Hash(h) => h as u32,
            SuffixConfig::Mixed(h, _) => h as u32,
            _ => 0,
        }
    }

    fn real_bits(self) -> u32 {
        match self {
            SuffixConfig::Real(r) => r as u32,
            SuffixConfig::Mixed(_, r) => r as u32,
            _ => 0,
        }
    }

    fn total_bits(self) -> u32 {
        self.hash_bits() + self.real_bits()
    }
}

/// Fixed-width bit-packed array for the suffix store.
#[derive(Debug, Default)]
struct PackedBits {
    words: Vec<u64>,
    width: u32,
}

impl PackedBits {
    fn new(width: u32, n: usize) -> Self {
        Self {
            words: vec![0; (width as usize * n).div_ceil(64)],
            width,
        }
    }

    fn set(&mut self, i: usize, value: u64) {
        let w = self.width as usize;
        if w == 0 {
            return;
        }
        debug_assert!(w == 64 || value < (1u64 << w));
        let bit = i * w;
        let (word, off) = (bit / 64, bit % 64);
        self.words[word] |= value << off;
        if off + w > 64 {
            self.words[word + 1] |= value >> (64 - off);
        }
    }

    fn get(&self, i: usize) -> u64 {
        let w = self.width as usize;
        if w == 0 {
            return 0;
        }
        let bit = i * w;
        let (word, off) = (bit / 64, bit % 64);
        let mut v = self.words[word] >> off;
        if off + w > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        v & (u64::MAX >> (64 - w))
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.words)
    }
}

/// The Succinct Range Filter.
#[derive(Debug)]
pub struct Surf {
    trie: LoudsTrie,
    suffixes: PackedBits,
    config: SuffixConfig,
    num_keys: usize,
}

/// Extracts `bits` key bits starting at byte offset `depth` (zero-padded
/// past the end of the key), MSB-first so numeric order matches key order.
fn real_suffix_bits(key: &[u8], depth: usize, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    let mut v: u64 = 0;
    let nbytes = bits.div_ceil(8) as usize;
    for i in 0..nbytes {
        let b = key.get(depth + i).copied().unwrap_or(0);
        v = (v << 8) | b as u64;
    }
    v >> (nbytes as u32 * 8 - bits)
}

impl Surf {
    /// Builds a SuRF over sorted, duplicate-free keys.
    pub fn new(keys: &[&[u8]], config: SuffixConfig) -> Self {
        let trie = LoudsTrie::build(keys, TrieOpts::surf());
        let mut suffixes = PackedBits::new(config.total_bits(), trie.num_values());
        if config.total_bits() > 0 {
            // Stored-prefix depth of key i = max LCP with its neighbors + 1
            // (capped at the key length) — exactly where truncation cut it.
            let lcp = |a: &[u8], b: &[u8]| memtree_common::key::common_prefix_len(a, b);
            for (value_idx, &key_idx) in trie.leaf_key_order().iter().enumerate() {
                let k = keys[key_idx as usize];
                let mut depth = 0usize;
                if key_idx > 0 {
                    depth = depth.max(lcp(keys[key_idx as usize - 1], k) + 1);
                }
                if (key_idx as usize) < keys.len() - 1 {
                    depth = depth.max(lcp(k, keys[key_idx as usize + 1]) + 1);
                }
                let depth = depth.min(k.len()).max(1.min(k.len()));
                let mut bits = 0u64;
                let h = config.hash_bits();
                if h > 0 {
                    bits = hash64(k) & (u64::MAX >> (64 - h));
                }
                let r = config.real_bits();
                if r > 0 {
                    bits = (bits << r) | real_suffix_bits(k, depth, r);
                }
                suffixes.set(value_idx, bits);
            }
        }
        Self {
            trie,
            suffixes,
            config,
            num_keys: keys.len(),
        }
    }

    /// Convenience constructor from owned keys.
    pub fn from_keys(keys: &[Vec<u8>], config: SuffixConfig) -> Self {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        Self::new(&refs, config)
    }

    /// Number of keys the filter was built over.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// Bits of filter per stored key.
    pub fn bits_per_key(&self) -> f64 {
        (self.size_bytes() as f64 * 8.0) / self.num_keys.max(1) as f64
    }

    /// The underlying truncated trie.
    pub fn trie(&self) -> &LoudsTrie {
        &self.trie
    }

    /// Stored suffix bits for a value slot (hash bits above real bits).
    fn stored(&self, value_idx: usize) -> u64 {
        self.suffixes.get(value_idx)
    }

    fn check_suffix(&self, value_idx: usize, key: &[u8], depth: usize) -> bool {
        let h = self.config.hash_bits();
        let r = self.config.real_bits();
        if h + r == 0 {
            return true;
        }
        let stored = self.stored(value_idx);
        if h > 0 {
            let expect = hash64(key) & (u64::MAX >> (64 - h));
            if stored >> r != expect {
                return false;
            }
        }
        if r > 0 {
            let expect = real_suffix_bits(key, depth, r);
            if stored & (u64::MAX >> (64 - r)) != expect {
                return false;
            }
        }
        true
    }

    /// Point membership test with the value-slot exposed (for tests).
    pub fn lookup(&self, key: &[u8]) -> bool {
        match self.trie.lookup(key) {
            LookupResult::Found { value_idx, depth } => self.check_suffix(value_idx, key, depth),
            LookupResult::NotFound => false,
        }
    }

    /// SuRF's `moveToNext(k)` (§4.1.5): an iterator at the smallest stored
    /// key `>= low` under one-sided-error semantics, refined by real suffix
    /// bits where possible. Returns `(iter, fp_flag)`.
    pub fn move_to_next<'a>(&'a self, low: &[u8]) -> (TrieIter<'a>, bool) {
        let mut it = self.trie.lower_bound(low);
        let mut fp = it.valid() && it.fp_flag();
        if fp {
            let r = self.config.real_bits();
            if r > 0 {
                // The stored key is a strict prefix of `low`; its real
                // suffix bits order it against low's bits at that position.
                let value_idx = it.value_idx();
                let stored_real = self.stored(value_idx) & (u64::MAX >> (64 - r));
                let query = real_suffix_bits(low, it.key().len(), r);
                if stored_real < query {
                    // Definitely smaller than low: advance.
                    it.next();
                    fp = false;
                } else if stored_real > query {
                    fp = false; // definitely >= low
                }
            }
        }
        (it, fp)
    }

    /// Appends this filter's raw image to `out`: the suffix config, key
    /// count, the packed suffix words, and the underlying trie image
    /// ([`LoudsTrie::serialize`]). No framing or checksum — the storage
    /// layer wraps images in its own CRC frame.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        let (tag, a, b): (u8, u8, u8) = match self.config {
            SuffixConfig::None => (0, 0, 0),
            SuffixConfig::Hash(h) => (1, h, 0),
            SuffixConfig::Real(r) => (2, r, 0),
            SuffixConfig::Mixed(h, r) => (3, h, r),
        };
        out.extend_from_slice(&[tag, a, b]);
        out.extend_from_slice(&(self.num_keys as u64).to_le_bytes());
        out.extend_from_slice(&(self.suffixes.words.len() as u64).to_le_bytes());
        for &w in &self.suffixes.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        self.trie.serialize(out);
    }

    /// Rebuilds a filter from a [`Surf::serialize`] image. Structural
    /// damage anywhere (truncated body, inconsistent suffix store, trie
    /// image corruption) is a typed `Corruption` error; a returned filter
    /// behaves identically to the one that was serialized.
    pub fn deserialize(buf: &[u8]) -> Result<Self> {
        const CTX: &str = "surf-image";
        let bad = |what: &str| MemtreeError::corruption(CTX, what.to_string());
        let need = |buf: &[u8], at: usize, n: usize| {
            if buf.len() - at < n {
                Err(bad("truncated body"))
            } else {
                Ok(())
            }
        };
        need(buf, 0, 3)?;
        let config = match (buf[0], buf[1], buf[2]) {
            (0, 0, 0) => SuffixConfig::None,
            (1, h @ 1..=32, 0) => SuffixConfig::Hash(h),
            (2, r @ 1..=32, 0) => SuffixConfig::Real(r),
            (3, h @ 1..=32, r @ 1..=32) if h + r <= 64 => SuffixConfig::Mixed(h, r),
            _ => return Err(bad("unknown suffix config")),
        };
        let mut at = 3;
        let u64_at = |buf: &[u8], at: &mut usize| -> Result<u64> {
            need(buf, *at, 8)?;
            let v = u64::from_le_bytes(buf[*at..*at + 8].try_into().unwrap());
            *at += 8;
            Ok(v)
        };
        let num_keys = u64_at(buf, &mut at)? as usize;
        let nwords = u64_at(buf, &mut at)? as usize;
        if nwords > buf.len() / 8 {
            return Err(bad("suffix store larger than image"));
        }
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(u64_at(buf, &mut at)?);
        }
        let trie = LoudsTrie::deserialize(&buf[at..])?;
        let width = config.total_bits();
        if words.len() != (width as usize * trie.num_values()).div_ceil(64) {
            return Err(bad("suffix store length disagrees with trie values"));
        }
        Ok(Self {
            trie,
            suffixes: PackedBits { words, width },
            config,
            num_keys,
        })
    }

    /// Approximate range count (§4.1.5): number of stored keys in
    /// `[low, high)`; may over-count by at most 2 (one per boundary).
    pub fn count(&self, low: &[u8], high: &[u8]) -> usize {
        if low >= high {
            return 0;
        }
        let (lo_it, _lo_fp) = self.move_to_next(low);
        let (mut hi_it, hi_fp) = self.move_to_next(high);
        if hi_fp && hi_it.valid() {
            // Ambiguous boundary: include it (over-count, never under).
            hi_it.next();
        }
        let before_hi = self.trie.count_before(&hi_it);
        let before_lo = self.trie.count_before(&lo_it);
        before_hi.saturating_sub(before_lo)
    }
}

impl PointFilter for Surf {
    fn may_contain(&self, key: &[u8]) -> bool {
        self.lookup(key)
    }

    /// Batched point membership test: the whole batch descends the trie
    /// level-synchronously ([`LoudsTrie::lookup_batch`]) so the cache
    /// misses of independent probes overlap — an LSM read path checks one
    /// SuRF per run for the same set of keys, making this the hot shape.
    fn may_contain_batch(&self, keys: &[&[u8]]) -> BitSet {
        let mut results = Vec::with_capacity(keys.len());
        self.trie.lookup_batch(keys, &mut results);
        let mut out = BitSet::new(keys.len());
        for (i, (r, key)) in results.iter().zip(keys).enumerate() {
            let hit = match *r {
                LookupResult::Found { value_idx, depth } => {
                    self.check_suffix(value_idx, key, depth)
                }
                LookupResult::NotFound => false,
            };
            if hit {
                out.set(i);
            }
        }
        out
    }

    fn size_bytes(&self) -> usize {
        self.trie.mem_usage() + self.suffixes.mem_usage()
    }
}

impl RangeFilter for Surf {
    fn may_contain_range(&self, low: &[u8], high: &[u8]) -> bool {
        if low >= high {
            return false;
        }
        let (it, fp) = self.move_to_next(low);
        if !it.valid() {
            return false;
        }
        let _ = fp;
        let k = it.key();
        // `k` is the stored (possibly truncated) prefix of the candidate;
        // the true key extends it. If k < high the extensions may fall
        // either side of `high` — return true (one-sided). A strict prefix
        // of `high` sorts below `high`, so it is covered here too.
        if k < high {
            return true;
        }
        // k >= high: every extension of k is >= k >= high, outside the
        // half-open range. In particular a *complete* stored key exactly
        // equal to `high` is excluded by [low, high) — the pre-fix code
        // answered true for it.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::hash::splitmix64;
    use memtree_common::key::encode_u64;

    fn random_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed;
        let mut keys: Vec<Vec<u8>> = (0..n)
            .map(|_| encode_u64(splitmix64(&mut state)).to_vec())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    fn email_keys(n: usize) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                format!(
                    "com.domain{:02}@user{:06}",
                    i % 40,
                    (i as u64).wrapping_mul(2654435761) % 1_000_000
                )
                .into_bytes()
            })
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    fn all_configs() -> Vec<SuffixConfig> {
        vec![
            SuffixConfig::None,
            SuffixConfig::Hash(4),
            SuffixConfig::Real(8),
            SuffixConfig::Mixed(4, 4),
        ]
    }

    #[test]
    fn no_false_negatives_point() {
        for keys in [random_keys(5000, 1), email_keys(5000)] {
            for cfg in all_configs() {
                let s = Surf::from_keys(&keys, cfg);
                for k in &keys {
                    assert!(s.may_contain(k), "false negative {k:?} cfg {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn batch_membership_matches_per_key() {
        for keys in [random_keys(4000, 21), email_keys(4000)] {
            for cfg in all_configs() {
                let s = Surf::from_keys(&keys, cfg);
                let mut probes: Vec<Vec<u8>> = Vec::new();
                for (i, k) in keys.iter().enumerate() {
                    probes.push(k.clone());
                    if i % 2 == 0 {
                        let mut q = k.clone();
                        q.push(b'!');
                        probes.push(q);
                    }
                    if i % 3 == 0 && k.len() > 1 {
                        probes.push(k[..k.len() - 1].to_vec());
                    }
                }
                let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
                let expect: Vec<bool> = refs.iter().map(|k| s.may_contain(k)).collect();
                for chunk in [1usize, 16, 128, refs.len()] {
                    let mut got = Vec::new();
                    for c in refs.chunks(chunk) {
                        let bits = s.may_contain_batch(c);
                        assert_eq!(bits.len(), c.len());
                        got.extend((0..c.len()).map(|i| bits.get(i)));
                    }
                    assert_eq!(got, expect, "cfg {cfg:?} chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn hash_suffix_fpr_bounded() {
        // With n hash bits, FPR on disjoint queries must be ~2^-n.
        let keys = random_keys(20_000, 3);
        let s = Surf::from_keys(&keys, SuffixConfig::Hash(8));
        let mut state = 999u64;
        let mut fp = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let q = encode_u64(splitmix64(&mut state) | 1 << 63);
            let miss = keys.binary_search(&q.to_vec()).is_err();
            if miss && s.may_contain(&q) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / trials as f64;
        assert!(fpr < 0.03, "hash FPR too high: {fpr}");
    }

    #[test]
    fn suffixes_reduce_fpr_in_order() {
        // FPR(base) >= FPR(real8) and FPR(base) >= FPR(hash8) on emails.
        let keys = email_keys(20_000);
        let probes: Vec<Vec<u8>> = (0..10_000)
            .map(|i| {
                format!(
                    "com.domain{:02}@user{:06}x",
                    i % 40,
                    (i as u64).wrapping_mul(97) % 1_000_000
                )
                .into_bytes()
            })
            .collect();
        let fpr = |cfg: SuffixConfig| {
            let s = Surf::from_keys(&keys, cfg);
            let mut fp = 0;
            let mut neg = 0;
            for p in &probes {
                if keys.binary_search(p).is_err() {
                    neg += 1;
                    if s.may_contain(p) {
                        fp += 1;
                    }
                }
            }
            fp as f64 / neg as f64
        };
        let base = fpr(SuffixConfig::None);
        let hash = fpr(SuffixConfig::Hash(8));
        let real = fpr(SuffixConfig::Real(8));
        assert!(hash <= base + 1e-9, "hash {hash} vs base {base}");
        assert!(real <= base + 1e-9, "real {real} vs base {base}");
        assert!(hash < 0.05, "hash FPR {hash}");
    }

    #[test]
    fn no_false_negatives_range() {
        let keys = random_keys(3000, 7);
        for cfg in all_configs() {
            let s = Surf::from_keys(&keys, cfg);
            // Ranges built around every 50th stored key must hit.
            for k in keys.iter().step_by(50) {
                let lo = k.clone();
                let hi = memtree_common::key::successor(k);
                assert!(
                    s.may_contain_range(&lo, &hi),
                    "range miss around {k:?} cfg {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn range_filter_rejects_empty_gaps() {
        // Keys spaced far apart: tight in-gap ranges should mostly be
        // rejected (not a correctness requirement — an efficacy check).
        let keys: Vec<Vec<u8>> = (0..10_000u64)
            .map(|i| encode_u64(i << 20).to_vec())
            .collect();
        let s = Surf::from_keys(&keys, SuffixConfig::Real(8));
        let mut rejected = 0;
        let total = 1000;
        for i in 0..total {
            let base = ((i as u64) << 20) + 5000;
            let lo = encode_u64(base);
            let hi = encode_u64(base + 100);
            if !s.may_contain_range(&lo, &hi) {
                rejected += 1;
            }
        }
        assert!(
            rejected > total * 9 / 10,
            "only {rejected}/{total} empty ranges rejected"
        );
    }

    #[test]
    fn half_open_range_excludes_exact_high_key() {
        // Regression: a complete stored key exactly equal to `high` is NOT
        // in [low, high); the filter used to answer true for it.
        for cfg in all_configs() {
            let s = Surf::new(&[b"ab", b"ac"], cfg);
            assert!(
                !s.may_contain_range(b"aa", b"ab"),
                "[aa, ab) holds no stored key, cfg {cfg:?}"
            );
            // Sanity: the adjacent ranges that do contain a key still hit.
            assert!(s.may_contain_range(b"ab", b"ac"), "cfg {cfg:?}");
            assert!(s.may_contain_range(b"ac", b"ad"), "cfg {cfg:?}");
            assert!(s.may_contain_range(b"aa", b"ab\x00"), "cfg {cfg:?}");
        }
        // Same shape on integer keys. Even u64s differ from a neighbor in
        // their last byte, so every key is stored *complete*; probing from
        // the odd key below (fixed 8 bytes, so it extends no stored prefix)
        // makes the exact-high exclusion deterministic.
        let keys: Vec<Vec<u8>> = (0..1000u64).map(|i| encode_u64(2 * i).to_vec()).collect();
        for cfg in all_configs() {
            let s = Surf::from_keys(&keys, cfg);
            for i in (1..1000u64).step_by(97) {
                let lo = encode_u64(2 * i - 1);
                let hi = encode_u64(2 * i);
                assert!(
                    !s.may_contain_range(&lo, &hi),
                    "gap ending at stored key {} leaked, cfg {cfg:?}",
                    2 * i
                );
            }
        }
    }

    #[test]
    fn count_over_counts_by_at_most_two() {
        let keys = random_keys(5000, 11);
        for cfg in [SuffixConfig::None, SuffixConfig::Real(8)] {
            let s = Surf::from_keys(&keys, cfg);
            let mut state = 77u64;
            for _ in 0..500 {
                let a = encode_u64(splitmix64(&mut state)).to_vec();
                let b = encode_u64(splitmix64(&mut state)).to_vec();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let truth = keys.partition_point(|k| k.as_slice() < hi.as_slice())
                    - keys.partition_point(|k| k.as_slice() < lo.as_slice());
                let got = s.count(&lo, &hi);
                assert!(
                    got >= truth && got <= truth + 2,
                    "count {got} vs truth {truth} cfg {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn base_is_about_10_bits_per_key_on_random_ints() {
        let keys = random_keys(100_000, 13);
        let s = Surf::from_keys(&keys, SuffixConfig::None);
        let bpk = s.bits_per_key();
        assert!(bpk > 5.0 && bpk < 16.0, "bits per key {bpk:.1}");
        // Email keys share prefixes: more internal nodes per key.
        let emails = email_keys(50_000);
        let se = Surf::from_keys(&emails, SuffixConfig::None);
        assert!(
            se.bits_per_key() > bpk * 0.8,
            "email {:.1} vs int {bpk:.1}",
            se.bits_per_key()
        );
    }

    #[test]
    fn serialize_roundtrip_is_behaviorally_identical() {
        for keys in [random_keys(2000, 5), email_keys(2000)] {
            for cfg in all_configs() {
                let s = Surf::from_keys(&keys, cfg);
                let mut img = Vec::new();
                s.serialize(&mut img);
                let d = Surf::deserialize(&img).unwrap();
                assert_eq!(d.num_keys(), s.num_keys(), "cfg {cfg:?}");
                // Vec capacity slack between push-built and exact-sized
                // storage makes byte-exact equality too strict.
                let (ds, ss) = (d.size_bytes() as f64, s.size_bytes() as f64);
                assert!((ds - ss).abs() <= ss * 0.01 + 64.0, "size {ds} vs {ss} cfg {cfg:?}");
                // Differential probe set: stored keys, extensions,
                // prefixes, and unrelated keys must all answer identically.
                let mut probes: Vec<Vec<u8>> = Vec::new();
                for (i, k) in keys.iter().enumerate() {
                    probes.push(k.clone());
                    let mut q = k.clone();
                    q.push(b'!');
                    probes.push(q);
                    if k.len() > 1 {
                        probes.push(k[..k.len() - 1].to_vec());
                    }
                    probes.push(format!("absent-{i}").into_bytes());
                }
                let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
                for k in &refs {
                    assert_eq!(s.may_contain(k), d.may_contain(k), "cfg {cfg:?} key {k:?}");
                }
                let a = s.may_contain_batch(&refs);
                let b = d.may_contain_batch(&refs);
                for i in 0..refs.len() {
                    assert_eq!(a.get(i), b.get(i), "cfg {cfg:?} batch probe {i}");
                }
                // Range behavior survives too (iterator + count machinery).
                for k in keys.iter().step_by(37) {
                    let hi = memtree_common::key::successor(k);
                    assert_eq!(
                        s.may_contain_range(k, &hi),
                        d.may_contain_range(k, &hi),
                        "cfg {cfg:?}"
                    );
                    assert_eq!(s.count(k, &hi), d.count(k, &hi), "cfg {cfg:?}");
                }
            }
        }
        // Degenerate shapes round-trip as well.
        for keys in [Vec::new(), vec![b"".to_vec()], vec![b"".to_vec(), b"a".to_vec()]] {
            let s = Surf::from_keys(&keys, SuffixConfig::Real(8));
            let mut img = Vec::new();
            s.serialize(&mut img);
            let d = Surf::deserialize(&img).unwrap();
            for k in [&b""[..], b"a", b"b"] {
                assert_eq!(s.may_contain(k), d.may_contain(k), "{keys:?} {k:?}");
            }
        }
    }

    #[test]
    fn truncated_or_damaged_images_are_typed_errors_never_panics() {
        let keys = random_keys(200, 9);
        let s = Surf::from_keys(&keys, SuffixConfig::Mixed(4, 4));
        let mut img = Vec::new();
        s.serialize(&mut img);
        // Every proper prefix of the body is semantically truncated: the
        // CRC frame around it may still validate, so deserialize itself
        // must reject it with a typed error rather than panic.
        for cut in 0..img.len() {
            assert!(
                Surf::deserialize(&img[..cut]).is_err(),
                "truncation to {cut} bytes must not produce a filter"
            );
        }
        // Trailing garbage is equally structural damage.
        let mut padded = img.clone();
        padded.extend_from_slice(&[0u8; 7]);
        assert!(Surf::deserialize(&padded).is_err());
        // An unknown config tag is rejected up front.
        let mut bad_tag = img.clone();
        bad_tag[0] = 9;
        assert!(Surf::deserialize(&bad_tag).is_err());
    }

    #[test]
    fn packed_bits_roundtrip() {
        for width in [1u32, 4, 7, 8, 13, 32] {
            let mut pb = PackedBits::new(width, 100);
            let mask = u64::MAX >> (64 - width);
            for i in 0..100usize {
                pb.set(i, (i as u64 * 2654435761) & mask);
            }
            for i in 0..100usize {
                assert_eq!(pb.get(i), (i as u64 * 2654435761) & mask, "w={width} i={i}");
            }
        }
    }

    #[test]
    fn mixed_suffix_uses_both_parts() {
        let keys = email_keys(5000);
        let s = Surf::from_keys(&keys, SuffixConfig::Mixed(4, 4));
        for k in keys.iter().step_by(13) {
            assert!(s.may_contain(k));
        }
        // Size reflects 8 suffix bits per key.
        let base = Surf::from_keys(&keys, SuffixConfig::None);
        let diff_bits =
            (s.size_bytes() - base.size_bytes()) as f64 * 8.0 / keys.len() as f64;
        assert!(diff_bits > 7.0 && diff_bits < 10.0, "diff {diff_bits:.1}");
    }
}
