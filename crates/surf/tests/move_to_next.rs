//! Focused tests of SuRF's `moveToNext` semantics (§4.1.5): the iterator,
//! its `fp_flag`, and the real-suffix refinement.

use memtree_surf::{SuffixConfig, Surf};

fn surf_of(keys: &[&[u8]], cfg: SuffixConfig) -> Surf {
    let mut owned: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
    owned.sort();
    owned.dedup();
    Surf::from_keys(&owned, cfg)
}

#[test]
fn truncated_prefix_hit_raises_fp_full_prefix_does_not() {
    // apple/banana/cherry truncate to single bytes: the stored "b" is a
    // strict prefix of the query, so the flag MUST be set.
    let s = surf_of(&[b"apple", b"banana", b"cherry"], SuffixConfig::None);
    let (it, fp) = s.move_to_next(b"banana");
    assert!(it.valid());
    assert!(fp, "one-byte truncation cannot certify a hit");
    assert_eq!(it.key(), b"b");
    // Keys diverging at their last byte are stored in full: querying one
    // exactly is unambiguous.
    let s = surf_of(&[b"ab", b"ac"], SuffixConfig::None);
    let (it, fp) = s.move_to_next(b"ab");
    assert!(it.valid());
    assert!(!fp, "full stored key == query is exact");
    assert_eq!(it.key(), b"ab");
}

#[test]
fn fp_flag_set_when_stored_prefix_of_query() {
    // "SIGMOD"/"SIGOPS"/"SIGAI": truncation stores SIG + one byte.
    let s = surf_of(&[b"SIGAI", b"SIGMOD", b"SIGOPS"], SuffixConfig::None);
    let (it, fp) = s.move_to_next(b"SIGMETRICS");
    assert!(it.valid());
    // The stored "SIGM" prefix is a strict prefix of the query — ambiguous.
    assert!(fp, "stored prefix of query must raise fp_flag");
    assert_eq!(it.key(), b"SIGM");
}

#[test]
fn real_suffix_refines_ambiguity() {
    // Same shape, but with real suffix bits: "SIGM|O..." vs query
    // "SIGMETRICS" (E < O) — the suffix proves stored >= query.
    let s = surf_of(&[b"SIGAI", b"SIGMOD", b"SIGOPS"], SuffixConfig::Real(8));
    let (it, fp) = s.move_to_next(b"SIGMETRICS");
    assert!(it.valid());
    assert!(!fp, "8 real bits disambiguate E vs O");
    // And a query the suffix proves *smaller* advances the iterator:
    // stored "SIGM(O)" < "SIGMZZZ" so next stored key (SIGO...) is returned.
    let (it2, fp2) = s.move_to_next(b"SIGMZZZ");
    assert!(it2.valid());
    assert!(!fp2);
    assert_eq!(it2.key(), b"SIGO");
}

#[test]
fn past_the_end_is_invalid() {
    let s = surf_of(&[b"a", b"b", b"c"], SuffixConfig::Real(8));
    let (it, fp) = s.move_to_next(b"zzz");
    assert!(!it.valid());
    assert!(!fp);
}

#[test]
fn iteration_covers_all_stored_prefixes_in_order() {
    let keys: Vec<Vec<u8>> = (0..500u64)
        .map(|i| format!("key{:05}", i * 3).into_bytes())
        .collect();
    let s = Surf::from_keys(&keys, SuffixConfig::None);
    let (mut it, _) = s.move_to_next(b"");
    let mut count = 0;
    let mut prev: Option<Vec<u8>> = None;
    while it.valid() {
        let k = it.key().to_vec();
        if let Some(p) = &prev {
            assert!(*p < k, "iterator out of order: {p:?} then {k:?}");
        }
        prev = Some(k);
        count += 1;
        it.next();
    }
    assert_eq!(count, keys.len(), "one stored item per key");
}

#[test]
fn empty_and_single_key_filters() {
    let s = Surf::from_keys(&[], SuffixConfig::Real(4));
    let (it, _) = s.move_to_next(b"x");
    assert!(!it.valid());
    assert_eq!(s.count(b"a", b"z"), 0);

    let s = Surf::from_keys(&[b"only".to_vec()], SuffixConfig::Real(4));
    assert!(s.lookup(b"only"));
    let (it, _) = s.move_to_next(b"a");
    assert!(it.valid());
    assert_eq!(s.count(b"a", b"z"), 1);
    assert_eq!(s.count(b"p", b"z"), 0);
}

#[test]
fn count_degenerate_ranges() {
    let keys: Vec<Vec<u8>> = (0..100u64).map(|i| format!("k{i:03}").into_bytes()).collect();
    let s = Surf::from_keys(&keys, SuffixConfig::Real(8));
    assert_eq!(s.count(b"k050", b"k050"), 0, "empty range");
    assert_eq!(s.count(b"k051", b"k050"), 0, "inverted range");
    let full = s.count(b"", b"z");
    assert!(full >= 100 && full <= 102, "full-range count {full}");
}
