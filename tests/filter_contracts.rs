//! One-sided-error contracts for every filter, as property tests: a
//! filter may lie with "maybe", never with "no".

use memtree::common::check::{prop_check, Gen};
use memtree::common::check;
use memtree::prelude::*;
use memtree::surf::SuffixConfig as SC;

fn keyset(g: &mut Gen) -> Vec<Vec<u8>> {
    let n = g.range(1..150);
    let set: std::collections::BTreeSet<Vec<u8>> =
        (0..n).map(|_| g.bytes_from(b"xyz", 1..8)).collect();
    set.into_iter().collect()
}

#[test]
fn surf_point_no_false_negatives() {
    prop_check("surf_point_no_false_negatives", 30, |g: &mut Gen| {
        let keys = keyset(g);
        let config = *g.pick(&[SC::None, SC::Hash(6), SC::Real(6), SC::Mixed(3, 3)]);
        let surf = Surf::from_keys(&keys, config);
        for k in &keys {
            check!(surf.may_contain(k), "false negative {:?} {:?}", k, config);
        }
        Ok(())
    });
}

#[test]
fn surf_range_no_false_negatives() {
    prop_check("surf_range_no_false_negatives", 30, |g: &mut Gen| {
        let keys = keyset(g);
        let config = *g.pick(&[SC::None, SC::Hash(6), SC::Real(6), SC::Mixed(3, 3)]);
        let surf = Surf::from_keys(&keys, config);
        // Every window around consecutive stored keys must report "maybe".
        for w in keys.windows(2) {
            check!(
                surf.may_contain_range(&w[0], &w[1]) || w[0] >= w[1],
                "range [{:?}, {:?}) missed its left endpoint",
                w[0],
                w[1]
            );
        }
        if let Some(last) = keys.last() {
            let hi = memtree::common::key::successor(last);
            check!(surf.may_contain_range(last, &hi));
        }
        Ok(())
    });
}

#[test]
fn surf_count_never_undercounts() {
    prop_check("surf_count_never_undercounts", 30, |g: &mut Gen| {
        let keys = keyset(g);
        let (a, b) = ((g.u64() % 200) as u8, (g.u64() % 200) as u8);
        let surf = Surf::from_keys(&keys, SC::Real(4));
        let (lo, hi) = (vec![b'x', a], vec![b'y', b]);
        let truth = keys.iter().filter(|k| **k >= lo && **k < hi).count();
        let got = surf.count(&lo, &hi);
        check!(got >= truth, "undercount: {} < {}", got, truth);
        check!(got <= truth + 2, "overcount beyond bound: {} > {}+2", got, truth);
        Ok(())
    });
}

#[test]
fn bloom_no_false_negatives() {
    prop_check("bloom_no_false_negatives", 30, |g: &mut Gen| {
        let keys = keyset(g);
        let bpk = 2.0 + (g.u64() % 1400) as f64 / 100.0;
        let bloom = BloomFilter::from_keys(&keys, bpk);
        for k in &keys {
            check!(bloom.may_contain(k));
        }
        Ok(())
    });
}

#[test]
fn arf_no_false_negatives_under_any_training() {
    prop_check("arf_no_false_negatives_under_any_training", 30, |g: &mut Gen| {
        let n = g.range(1..100);
        let keyset: std::collections::BTreeSet<u64> = (0..n).map(|_| g.u64()).collect();
        let keys: Vec<u64> = keyset.into_iter().collect();
        let mut arf = Arf::new(keys.clone(), 4096);
        let n_queries = g.range(0..50);
        for _ in 0..n_queries {
            let lo = g.u64();
            let span = g.u64() as u32;
            let hi = lo.saturating_add(span as u64);
            let truth = keys.iter().any(|&k| k >= lo && k <= hi);
            arf.train(lo, hi, truth);
        }
        arf.freeze();
        for &k in &keys {
            check!(arf.may_contain_range_u64(k, k), "lost key {}", k);
        }
        Ok(())
    });
}
