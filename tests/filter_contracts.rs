//! One-sided-error contracts for every filter, as property tests: a
//! filter may lie with "maybe", never with "no".

use memtree::prelude::*;
use memtree::surf::SuffixConfig as SC;
use proptest::prelude::*;

fn keyset() -> impl Strategy<Value = std::collections::BTreeSet<Vec<u8>>> {
    proptest::collection::btree_set(
        proptest::collection::vec(prop_oneof![Just(b'x'), Just(b'y'), Just(b'z')], 1..8),
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn surf_point_no_false_negatives(keys in keyset(), cfg in 0..4usize) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let config = [SC::None, SC::Hash(6), SC::Real(6), SC::Mixed(3, 3)][cfg];
        let surf = Surf::from_keys(&keys, config);
        for k in &keys {
            prop_assert!(surf.may_contain(k), "false negative {:?} {:?}", k, config);
        }
    }

    #[test]
    fn surf_range_no_false_negatives(keys in keyset(), cfg in 0..4usize) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let config = [SC::None, SC::Hash(6), SC::Real(6), SC::Mixed(3, 3)][cfg];
        let surf = Surf::from_keys(&keys, config);
        // Every window around consecutive stored keys must report "maybe".
        for w in keys.windows(2) {
            prop_assert!(
                surf.may_contain_range(&w[0], &w[1]) || w[0] >= w[1],
                "range [{:?}, {:?}) missed its left endpoint",
                w[0],
                w[1]
            );
        }
        if let Some(last) = keys.last() {
            let hi = memtree::common::key::successor(last);
            prop_assert!(surf.may_contain_range(last, &hi));
        }
    }

    #[test]
    fn surf_count_never_undercounts(keys in keyset(), a in 0..200u8, b in 0..200u8) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let surf = Surf::from_keys(&keys, SC::Real(4));
        let (lo, hi) = (vec![b'x', a], vec![b'y', b]);
        let truth = keys.iter().filter(|k| **k >= lo && **k < hi).count();
        let got = surf.count(&lo, &hi);
        prop_assert!(got >= truth, "undercount: {} < {}", got, truth);
        prop_assert!(got <= truth + 2, "overcount beyond bound: {} > {}+2", got, truth);
    }

    #[test]
    fn bloom_no_false_negatives(keys in keyset(), bpk in 2.0..16.0f64) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let bloom = BloomFilter::from_keys(&keys, bpk);
        for k in &keys {
            prop_assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn arf_no_false_negatives_under_any_training(
        keys in proptest::collection::btree_set(any::<u64>(), 1..100),
        queries in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..50),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut arf = Arf::new(keys.clone(), 4096);
        for (lo, span) in queries {
            let hi = lo.saturating_add(span as u64);
            let truth = keys.iter().any(|&k| k >= lo && k <= hi);
            arf.train(lo, hi, truth);
        }
        arf.freeze();
        for &k in &keys {
            prop_assert!(arf.may_contain_range_u64(k, k), "lost key {}", k);
        }
    }
}
