//! Cross-crate consistency: every dynamic tree and every static tree must
//! behave identically to a `BTreeMap` reference model under randomized
//! operation sequences.

use memtree::common::check::{prop_check, Gen};
use memtree::common::check_eq;
use memtree::prelude::*;
use memtree::trees::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Action {
    Insert(Vec<u8>, u64),
    Get(Vec<u8>),
    Update(Vec<u8>, u64),
    Remove(Vec<u8>),
    Scan(Vec<u8>, usize),
}

fn key(g: &mut Gen) -> Vec<u8> {
    // Small alphabet + short keys maximize prefix/boundary collisions.
    g.bytes_from(b"abc", 0..7)
}

fn action(g: &mut Gen) -> Action {
    match g.range(0..5) {
        0 => Action::Insert(key(g), g.u64()),
        1 => Action::Get(key(g)),
        2 => Action::Update(key(g), g.u64()),
        3 => Action::Remove(key(g)),
        _ => Action::Scan(key(g), g.range(0..20)),
    }
}

fn actions(g: &mut Gen) -> Vec<Action> {
    let n = g.range(1..120);
    (0..n).map(|_| action(g)).collect()
}

fn check_against_model<T: OrderedIndex>(
    tree: &mut T,
    actions: &[Action],
) -> Result<(), String> {
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (step, action) in actions.iter().enumerate() {
        match action {
            Action::Insert(k, v) => {
                let expect = !model.contains_key(k);
                if expect {
                    model.insert(k.clone(), *v);
                }
                check_eq!(tree.insert(k, *v), expect, "step {} insert {:?}", step, k);
            }
            Action::Get(k) => {
                check_eq!(tree.get(k), model.get(k).copied(), "step {} get {:?}", step, k);
            }
            Action::Update(k, v) => {
                let expect = model.contains_key(k);
                if expect {
                    model.insert(k.clone(), *v);
                }
                check_eq!(tree.update(k, *v), expect, "step {} update {:?}", step, k);
            }
            Action::Remove(k) => {
                let expect = model.remove(k).is_some();
                check_eq!(tree.remove(k), expect, "step {} remove {:?}", step, k);
            }
            Action::Scan(k, n) => {
                let expect: Vec<u64> = model.range(k.clone()..).take(*n).map(|(_, v)| *v).collect();
                let mut got = Vec::new();
                tree.scan(k, *n, &mut got);
                check_eq!(got, expect, "step {} scan {:?}+{}", step, k, n);
            }
        }
        check_eq!(tree.len(), model.len(), "step {} len", step);
    }
    Ok(())
}

#[test]
fn btree_matches_model() {
    prop_check("btree_matches_model", 40, |g: &mut Gen| {
        check_against_model(&mut BPlusTree::with_fanout(4), &actions(g))
    });
}

#[test]
fn skiplist_matches_model() {
    prop_check("skiplist_matches_model", 40, |g: &mut Gen| {
        check_against_model(&mut SkipList::new(), &actions(g))
    });
}

#[test]
fn art_matches_model() {
    prop_check("art_matches_model", 40, |g: &mut Gen| {
        check_against_model(&mut Art::new(), &actions(g))
    });
}

#[test]
fn masstree_matches_model() {
    prop_check("masstree_matches_model", 40, |g: &mut Gen| {
        check_against_model(&mut Masstree::new(), &actions(g))
    });
}

#[test]
fn prefix_btree_matches_model() {
    prop_check("prefix_btree_matches_model", 40, |g: &mut Gen| {
        check_against_model(&mut PrefixBTree::with_fanout(4), &actions(g))
    });
}

#[test]
fn hybrid_btree_matches_model() {
    prop_check("hybrid_btree_matches_model", 40, |g: &mut Gen| {
        check_against_model(&mut HybridBTree::new(), &actions(g))
    });
}

#[test]
fn static_trees_match_sorted_input() {
    prop_check("static_trees_match_sorted_input", 40, |g: &mut Gen| {
        let n = g.range(1..200);
        let keys: std::collections::BTreeSet<Vec<u8>> = (0..n).map(|_| key(g)).collect();
        let probes: Vec<Vec<u8>> = (0..10).map(|_| key(g)).collect();
        let entries: Vec<(Vec<u8>, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u64))
            .collect();
        let model: BTreeMap<&[u8], u64> =
            entries.iter().map(|(k, v)| (k.as_slice(), *v)).collect();

        let compact_b = CompactBTree::build(&entries);
        let compact_s = CompactSkipList::build(&entries);
        let compact_a = CompactArt::build(&entries);
        let compact_m = CompactMasstree::build(&entries);
        let compressed = CompressedBTree::build(&entries);
        let fst = Fst::build(&entries);

        for probe in keys.iter().chain(probes.iter()) {
            let expect = model.get(probe.as_slice()).copied();
            check_eq!(compact_b.get(probe), expect, "compact-btree {:?}", probe);
            check_eq!(compact_s.get(probe), expect, "compact-skiplist {:?}", probe);
            check_eq!(compact_a.get(probe), expect, "compact-art {:?}", probe);
            check_eq!(compact_m.get(probe), expect, "compact-masstree {:?}", probe);
            check_eq!(compressed.get(probe), expect, "compressed {:?}", probe);
            check_eq!(fst.get(probe), expect, "fst {:?}", probe);
            // Scans agree too.
            let expect_scan: Vec<u64> = model
                .range(probe.as_slice()..)
                .take(5)
                .map(|(_, v)| *v)
                .collect();
            for (name, got) in [
                ("compact-btree", scan_of(&compact_b, probe)),
                ("compact-skiplist", scan_of(&compact_s, probe)),
                ("compact-art", scan_of(&compact_a, probe)),
                ("compact-masstree", scan_of(&compact_m, probe)),
                ("compressed", scan_of(&compressed, probe)),
                ("fst", scan_of(&fst, probe)),
            ] {
                check_eq!(got, expect_scan, "{} scan {:?}", name, probe);
            }
        }
        Ok(())
    });
}

fn scan_of<T: StaticIndex>(t: &T, low: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    t.scan(low, 5, &mut out);
    out
}
