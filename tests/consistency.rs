//! Cross-crate consistency: every dynamic tree and every static tree must
//! behave identically to a `BTreeMap` reference model under randomized
//! operation sequences.

use memtree::prelude::*;
use memtree::trees::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Action {
    Insert(Vec<u8>, u64),
    Get(Vec<u8>),
    Update(Vec<u8>, u64),
    Remove(Vec<u8>),
    Scan(Vec<u8>, usize),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet + short keys maximize prefix/boundary collisions.
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..7)
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Action::Insert(k, v)),
        key_strategy().prop_map(Action::Get),
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Action::Update(k, v)),
        key_strategy().prop_map(Action::Remove),
        (key_strategy(), 0..20usize).prop_map(|(k, n)| Action::Scan(k, n)),
    ]
}

fn check_against_model<T: OrderedIndex>(tree: &mut T, actions: &[Action]) {
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (step, action) in actions.iter().enumerate() {
        match action {
            Action::Insert(k, v) => {
                let expect = !model.contains_key(k);
                if expect {
                    model.insert(k.clone(), *v);
                }
                assert_eq!(tree.insert(k, *v), expect, "step {step} insert {k:?}");
            }
            Action::Get(k) => {
                assert_eq!(tree.get(k), model.get(k).copied(), "step {step} get {k:?}");
            }
            Action::Update(k, v) => {
                let expect = model.contains_key(k);
                if expect {
                    model.insert(k.clone(), *v);
                }
                assert_eq!(tree.update(k, *v), expect, "step {step} update {k:?}");
            }
            Action::Remove(k) => {
                let expect = model.remove(k).is_some();
                assert_eq!(tree.remove(k), expect, "step {step} remove {k:?}");
            }
            Action::Scan(k, n) => {
                let expect: Vec<u64> = model.range(k.clone()..).take(*n).map(|(_, v)| *v).collect();
                let mut got = Vec::new();
                tree.scan(k, *n, &mut got);
                assert_eq!(got, expect, "step {step} scan {k:?}+{n}");
            }
        }
        assert_eq!(tree.len(), model.len(), "step {step} len");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn btree_matches_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        check_against_model(&mut BPlusTree::with_fanout(4), &actions);
    }

    #[test]
    fn skiplist_matches_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        check_against_model(&mut SkipList::new(), &actions);
    }

    #[test]
    fn art_matches_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        check_against_model(&mut Art::new(), &actions);
    }

    #[test]
    fn masstree_matches_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        check_against_model(&mut Masstree::new(), &actions);
    }

    #[test]
    fn prefix_btree_matches_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        check_against_model(&mut PrefixBTree::with_fanout(4), &actions);
    }

    #[test]
    fn hybrid_btree_matches_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        check_against_model(&mut HybridBTree::new(), &actions);
    }

    #[test]
    fn static_trees_match_sorted_input(
        keys in proptest::collection::btree_set(key_strategy(), 1..200),
        probes in proptest::collection::vec(key_strategy(), 10),
    ) {
        let entries: Vec<(Vec<u8>, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u64))
            .collect();
        let model: BTreeMap<&[u8], u64> =
            entries.iter().map(|(k, v)| (k.as_slice(), *v)).collect();

        let compact_b = CompactBTree::build(&entries);
        let compact_s = CompactSkipList::build(&entries);
        let compact_a = CompactArt::build(&entries);
        let compact_m = CompactMasstree::build(&entries);
        let compressed = CompressedBTree::build(&entries);
        let fst = Fst::build(&entries);

        for probe in keys.iter().chain(probes.iter()) {
            let expect = model.get(probe.as_slice()).copied();
            prop_assert_eq!(compact_b.get(probe), expect, "compact-btree {:?}", probe);
            prop_assert_eq!(compact_s.get(probe), expect, "compact-skiplist {:?}", probe);
            prop_assert_eq!(compact_a.get(probe), expect, "compact-art {:?}", probe);
            prop_assert_eq!(compact_m.get(probe), expect, "compact-masstree {:?}", probe);
            prop_assert_eq!(compressed.get(probe), expect, "compressed {:?}", probe);
            prop_assert_eq!(fst.get(probe), expect, "fst {:?}", probe);
            // Scans agree too.
            let expect_scan: Vec<u64> = model
                .range(probe.as_slice()..)
                .take(5)
                .map(|(_, v)| *v)
                .collect();
            for (name, got) in [
                ("compact-btree", scan_of(&compact_b, probe)),
                ("compact-skiplist", scan_of(&compact_s, probe)),
                ("compact-art", scan_of(&compact_a, probe)),
                ("compact-masstree", scan_of(&compact_m, probe)),
                ("compressed", scan_of(&compressed, probe)),
                ("fst", scan_of(&fst, probe)),
            ] {
                prop_assert_eq!(&got, &expect_scan, "{} scan {:?}", name, probe);
            }
        }
    }
}

fn scan_of<T: StaticIndex>(t: &T, low: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    t.scan(low, 5, &mut out);
    out
}
