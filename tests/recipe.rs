//! End-to-end recipe tests spanning crates: D-to-S conversions feed
//! hybrids, HOPE wraps hybrids, SuRF guards LSM levels — the full pipeline
//! the thesis proposes, composed.

use memtree::hope::{Hope, HopeIndex, Scheme};
use memtree::lsm::{Db, DbOptions, FilterKind, SeekResult};
use memtree::prelude::*;
use memtree::trees::*;
use memtree::workload::keys;
use memtree::workload::ycsb::{Mix, Op, OpGenerator};

#[test]
fn dynamic_to_static_to_hybrid_roundtrip() {
    // Build each dynamic tree, convert to its compact form, verify, then
    // run the same content through the hybrid and verify again.
    let key_set = keys::sorted_unique(keys::email_keys(20_000, 5));
    let entries: Vec<(Vec<u8>, u64)> = key_set
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u64))
        .collect();

    macro_rules! check_pair {
        ($dyn_ty:ty, $static_ty:ty, $hybrid_ty:ty) => {{
            let mut d: $dyn_ty = Default::default();
            for (k, v) in &entries {
                assert!(d.insert(k, *v));
            }
            let s = <$static_ty>::build(&entries);
            assert!(s.mem_usage() < d.mem_usage(), "static must be smaller");
            let mut h: $hybrid_ty = Default::default();
            for (k, v) in &entries {
                assert!(h.insert(k, *v));
            }
            for (k, v) in entries.iter().step_by(61) {
                assert_eq!(d.get(k), Some(*v));
                assert_eq!(s.get(k), Some(*v));
                assert_eq!(h.get(k), Some(*v));
            }
        }};
    }
    check_pair!(BPlusTree, CompactBTree, HybridBTree);
    check_pair!(SkipList, CompactSkipList, HybridSkipList);
    check_pair!(Art, CompactArt, HybridArt);
    check_pair!(Masstree, CompactMasstree, HybridMasstree);
}

#[test]
fn hope_wrapped_hybrid_survives_ycsb() {
    let key_set = keys::sorted_unique(keys::url_keys(10_000, 9));
    let sample: Vec<Vec<u8>> = key_set.iter().step_by(50).cloned().collect();
    let hope = Hope::train_keys(Scheme::ThreeGrams, &sample, 1 << 14);
    let mut index = HopeIndex::new(HybridBTree::new(), hope);
    let mut reference = BPlusTree::new();
    for (i, k) in key_set.iter().enumerate() {
        assert!(index.insert(k, i as u64));
        reference.insert(k, i as u64);
    }
    // Run a YCSB-A-style mixed phase and compare every outcome.
    let mut gen = OpGenerator::new(Mix::A, key_set.len(), 3);
    let extra = keys::sorted_unique(keys::url_keys(12_000, 10));
    let mut inserted_extra = 0usize;
    for step in 0..5000 {
        match gen.next() {
            Op::Read(i) => {
                assert_eq!(
                    index.get(&key_set[i]),
                    reference.get(&key_set[i]),
                    "step {step}"
                );
            }
            Op::Update(i) => {
                let v = step as u64 + 1_000_000;
                assert_eq!(
                    index.update(&key_set[i], v),
                    reference.update(&key_set[i], v)
                );
            }
            Op::Insert(_) => {
                let k = &extra[inserted_extra % extra.len()];
                inserted_extra += 1;
                assert_eq!(index.insert(k, 1), reference.insert(k, 1));
            }
            Op::Scan(i, n) => {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                index.scan(&key_set[i], n, &mut a);
                reference.scan(&key_set[i], n, &mut b);
                assert_eq!(a, b, "step {step} scan");
            }
        }
    }
    assert_eq!(index.len(), reference.len());
}

#[test]
fn surf_guards_lsm_with_zero_false_negatives() {
    let mut db = Db::new(DbOptions {
        memtable_bytes: 16 << 10,
        filter: FilterKind::SurfReal(8),
        ..Default::default()
    });
    let key_set = keys::sorted_unique(keys::email_keys(5000, 21));
    for (i, k) in key_set.iter().enumerate() {
        db.put(k, &(i as u64).to_le_bytes()).unwrap();
    }
    db.flush().unwrap();
    // Every stored key must be retrievable despite filters at every level.
    for (i, k) in key_set.iter().enumerate() {
        assert_eq!(
            db.get(k),
            Some((i as u64).to_le_bytes().to_vec()),
            "lost {i}"
        );
    }
    // Seeks across the whole key space return exactly the successor.
    for i in (0..key_set.len() - 1).step_by(97) {
        let probe = memtree::common::key::successor(&key_set[i]);
        match db.seek(&probe, None) {
            SeekResult::Found { key } => assert_eq!(key, key_set[i + 1], "seek after {i}"),
            SeekResult::NotFound => panic!("seek after {i} found nothing"),
        }
    }
}

#[test]
fn fst_is_smallest_faithful_index() {
    // The chapter-3 claim in miniature: FST beats the compact trees on
    // space while staying exact.
    let key_set = keys::sorted_unique(keys::rand_u64_keys(50_000, 3));
    let entries: Vec<(Vec<u8>, u64)> = key_set
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u64))
        .collect();
    let fst = Fst::build(&entries);
    let compact_art = CompactArt::build(&entries);
    let compact_btree = CompactBTree::build(&entries);
    // FST stores structure succinctly; exclude the (identical) value
    // arrays from the comparison.
    let value_bytes = entries.len() * 8;
    let fst_struct = fst.mem_usage() - value_bytes;
    assert!(
        fst_struct < compact_art.mem_usage() - value_bytes,
        "fst {} vs c-art {}",
        fst_struct,
        compact_art.mem_usage() - value_bytes
    );
    assert!(fst_struct < compact_btree.mem_usage() - value_bytes);
    for (k, v) in entries.iter().step_by(173) {
        assert_eq!(fst.get(k), Some(*v));
    }
}
