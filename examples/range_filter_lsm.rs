//! SuRF as a Bloom-filter replacement in an LSM engine (Chapter 4's
//! RocksDB scenario, scaled): time-series range queries where SuRF saves
//! the I/O that Bloom filters cannot.
//!
//! ```sh
//! cargo run --release --example range_filter_lsm
//! ```

use memtree::lsm::{Db, DbOptions, FilterKind, SeekResult};
use memtree::workload::timeseries::sensor_events;
use std::time::Duration;

fn build_db(filter: FilterKind) -> Db {
    let mut db = Db::new(DbOptions {
        memtable_bytes: 64 << 10,
        filter,
        cache_blocks: 128,
        io_read_latency: Duration::from_micros(20), // "SSD" block read
        ..Default::default()
    });
    // 200 sensors; one event per ~100µs *across all sensors* (the paper's
    // aggregate λ = 10^5 ns), 10s of recording => ~100k events.
    let events = sensor_events(200, 100_000 * 200, 10_000_000_000, 7);
    for e in &events {
        db.put(&e.key(), b"sensor-record-payload-......").unwrap(); // small value
    }
    db.flush().unwrap();
    db.reset_io_stats();
    db
}

fn closed_seeks(db: &Db, range_ns: u64, queries: usize) -> (usize, u64, f64) {
    let mut state = 99u64;
    let mut hits = 0usize;
    let start = std::time::Instant::now();
    for _ in 0..queries {
        let base = memtree::common::hash::splitmix64(&mut state) % 10_000_000_000;
        let mut lo = [0u8; 16];
        lo[..8].copy_from_slice(&base.to_be_bytes());
        let mut hi = [0u8; 16];
        hi[..8].copy_from_slice(&(base + range_ns).to_be_bytes());
        if let SeekResult::Found { .. } = db.seek(&lo, Some(&hi)) {
            hits += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (hits, db.io_stats().block_reads, queries as f64 / secs)
}

fn main() {
    println!("building three LSM instances (none / Bloom / SuRF-Real)...");
    let configs = [
        ("no filter", FilterKind::None),
        ("Bloom 14bpk", FilterKind::Bloom(14.0)),
        ("SuRF-Real8", FilterKind::SurfReal(8)),
    ];
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>10}",
        "filter", "hits", "block reads", "ops/sec", "IO/op"
    );
    for (name, filter) in configs {
        let db = build_db(filter);
        // Short ranges: most are empty between Poisson events.
        let (hits, ios, tput) = closed_seeks(&db, 20_000, 3000);
        println!(
            "{:<12} {:>8} {:>12} {:>12.0} {:>10.3}",
            name,
            hits,
            ios,
            tput,
            ios as f64 / 3000.0
        );
    }
    println!();
    println!("SuRF prunes empty ranges before any disk access; Bloom cannot");
    println!("help range queries at all (same I/O as no filter).");
}
