//! The hybrid index inside an OLTP engine: run TPC-C on the mini H-Store
//! with each index configuration and compare throughput and memory
//! (Figure 5.11's experiment at laptop scale).
//!
//! ```sh
//! cargo run --release --example hybrid_oltp
//! ```

use memtree::hstore::db::IndexChoice;
use memtree::hstore::tpcc::{Tpcc, TpccConfig};
use memtree::hstore::Database;
use std::time::Instant;

fn main() {
    let cfg = TpccConfig {
        warehouses: 2,
        items: 20_000,
        customers_per_district: 600,
    };
    println!("TPC-C, {} warehouses, {} items", cfg.warehouses, cfg.items);
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>12}",
        "index", "txn/s", "index MB", "tuple MB", "total MB"
    );
    for choice in [
        IndexChoice::BTree,
        IndexChoice::Hybrid,
        IndexChoice::HybridCompressed,
    ] {
        let mut db = Database::new(choice);
        let mut tpcc = Tpcc::load(&mut db, cfg, 42);
        // Warm up, then measure.
        for _ in 0..2_000 {
            tpcc.run_one(&mut db).expect("txn");
        }
        let txns = 20_000;
        let start = Instant::now();
        for _ in 0..txns {
            tpcc.run_one(&mut db).expect("txn");
        }
        let secs = start.elapsed().as_secs_f64();
        let stats = db.stats();
        println!(
            "{:<20} {:>10.0} {:>12.1} {:>12.1} {:>12.1}",
            choice.name(),
            txns as f64 / secs,
            (stats.primary_index_bytes + stats.secondary_index_bytes) as f64 / 1e6,
            stats.tuple_bytes as f64 / 1e6,
            stats.total() as f64 / 1e6,
        );
    }
    println!();
    println!("hybrid indexes trade a few percent of throughput for a much");
    println!("smaller index footprint (thesis: 40-55% index memory saved).");
}
