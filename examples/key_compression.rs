//! HOPE's six schemes side by side on three key distributions
//! (Chapter 6's microbenchmark view), then one scheme applied to a search
//! tree.
//!
//! ```sh
//! cargo run --release --example key_compression
//! ```

use memtree::hope::{Hope, HopeIndex, Scheme};
use memtree::prelude::*;
use memtree::trees::PrefixBTree;
use memtree::workload::keys;
use std::time::Instant;

fn main() {
    let datasets: Vec<(&str, Vec<Vec<u8>>)> = vec![
        ("email", keys::sorted_unique(keys::email_keys(100_000, 1))),
        ("wiki", keys::sorted_unique(keys::wiki_keys(100_000, 2))),
        ("url", keys::sorted_unique(keys::url_keys(100_000, 3))),
    ];
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12}",
        "scheme", "dataset", "CPR", "ns/encode", "dict KB"
    );
    for (name, keys) in &datasets {
        let sample: Vec<Vec<u8>> = keys.iter().step_by(100).cloned().collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for scheme in Scheme::all() {
            let limit = match scheme {
                Scheme::SingleChar => 256,
                Scheme::DoubleChar => 1 << 16,
                _ => 1 << 16,
            };
            let hope = Hope::train_keys(scheme, &sample, limit);
            let cpr = hope.cpr(&refs);
            let start = Instant::now();
            let mut sink = 0usize;
            for k in &refs {
                sink += hope.encode_bytes(k).len();
            }
            let ns = start.elapsed().as_nanos() as f64 / refs.len() as f64;
            std::hint::black_box(sink);
            println!(
                "{:<14} {:>8} {:>8.2} {:>12.0} {:>12.1}",
                scheme.name(),
                name,
                cpr,
                ns,
                hope.dict_mem() as f64 / 1e3
            );
        }
        println!();
    }

    // Apply the best-compressing scheme to a Prefix B+tree.
    let (_, emails) = &datasets[0];
    let sample: Vec<Vec<u8>> = emails.iter().step_by(100).cloned().collect();
    let hope = Hope::train_keys(Scheme::FourGrams, &sample, 1 << 16);
    let mut plain = PrefixBTree::new();
    let mut packed = HopeIndex::new(PrefixBTree::new(), hope);
    for (i, k) in emails.iter().enumerate() {
        plain.insert(k, i as u64);
        packed.insert(k, i as u64);
    }
    println!(
        "Prefix B+tree on emails: plain {:.1} MB, HOPE-encoded {:.1} MB",
        plain.mem_usage() as f64 / 1e6,
        packed.mem_usage() as f64 / 1e6
    );
    // Range semantics survive encoding.
    let (mut a, mut b) = (Vec::new(), Vec::new());
    plain.scan(b"com.gmail@", 10, &mut a);
    packed.scan(b"com.gmail@", 10, &mut b);
    assert_eq!(a, b);
    println!("range scans agree between plain and encoded trees");
}
