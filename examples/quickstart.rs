//! Quickstart: one tour through the thesis's recipe.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memtree::prelude::*;
use memtree::trees::{BPlusTree, CompactBTree};
use memtree::workload::keys;

fn main() {
    // ------------------------------------------------------------------
    // Step 0: a key set. 200k email addresses (host-reversed).
    // ------------------------------------------------------------------
    let raw = keys::email_keys(200_000, 42);
    let sorted = keys::sorted_unique(raw);
    let entries: Vec<(Vec<u8>, u64)> = sorted
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u64))
        .collect();
    println!("loaded {} email keys", entries.len());

    // ------------------------------------------------------------------
    // Step 1 (Ch. 2): dynamic tree vs its D-to-S compact version.
    // ------------------------------------------------------------------
    let mut dynamic = BPlusTree::new();
    for (k, v) in &entries {
        dynamic.insert(k, *v);
    }
    let compact = CompactBTree::build(&entries);
    println!(
        "B+tree: dynamic {:.1} MB -> compact {:.1} MB ({}% saved)",
        dynamic.mem_usage() as f64 / 1e6,
        compact.mem_usage() as f64 / 1e6,
        100 - 100 * compact.mem_usage() / dynamic.mem_usage()
    );

    // ------------------------------------------------------------------
    // Step 2 (Ch. 3): the Fast Succinct Trie.
    // ------------------------------------------------------------------
    let fst = Fst::build(&entries);
    println!(
        "FST: {:.1} MB, {:.1} bits/node over {} nodes",
        fst.mem_usage() as f64 / 1e6,
        fst.trie().mem_usage() as f64 * 8.0 / fst.trie().num_nodes() as f64,
        fst.trie().num_nodes()
    );
    let probe = &entries[12345];
    assert_eq!(fst.get(&probe.0), Some(probe.1));

    // ------------------------------------------------------------------
    // Step 3 (Ch. 4): SuRF — approximate range filtering.
    // ------------------------------------------------------------------
    let surf = Surf::from_keys(&sorted, SuffixConfig::Real(8));
    println!(
        "SuRF-Real8: {:.1} bits per key (complete keys average {:.0} bits)",
        surf.bits_per_key(),
        sorted.iter().map(|k| k.len()).sum::<usize>() as f64 * 8.0 / sorted.len() as f64
    );
    assert!(surf.may_contain(&probe.0));
    let miss = b"zz.unknown@nobody".to_vec();
    println!(
        "  point query on an absent key -> {}",
        surf.may_contain(&miss)
    );

    // ------------------------------------------------------------------
    // Step 4 (Ch. 5): the hybrid index keeps writes fast.
    // ------------------------------------------------------------------
    let mut hybrid = HybridBTree::new();
    for (k, v) in &entries {
        hybrid.insert(k, *v);
    }
    println!(
        "Hybrid B+tree: {:.1} MB after {} merges (dynamic stage holds {} of {} keys)",
        hybrid.mem_usage() as f64 / 1e6,
        hybrid.merge_stats().merges,
        hybrid.dynamic_len(),
        hybrid.len()
    );

    // ------------------------------------------------------------------
    // Step 5 (Ch. 6): HOPE compresses the keys themselves.
    // ------------------------------------------------------------------
    let sample: Vec<Vec<u8>> = sorted.iter().step_by(100).cloned().collect();
    let hope = Hope::train_keys(Scheme::ThreeGrams, &sample, 1 << 16);
    let refs: Vec<&[u8]> = sorted.iter().map(|k| k.as_slice()).collect();
    println!(
        "HOPE 3-Grams: compression rate {:.2}x with a {:.0} KB dictionary",
        hope.cpr(&refs),
        hope.dict_mem() as f64 / 1e3
    );
    let mut compressed_tree = HopeIndex::new(BPlusTree::new(), hope);
    for (k, v) in &entries {
        compressed_tree.insert(k, *v);
    }
    println!(
        "HOPE-encoded B+tree: {:.1} MB vs plain {:.1} MB",
        compressed_tree.mem_usage() as f64 / 1e6,
        dynamic.mem_usage() as f64 / 1e6
    );
    assert_eq!(compressed_tree.get(&probe.0), Some(probe.1));
    println!("all lookups verified — recipe complete");
}
