//! # memtree
//!
//! Memory-efficient search trees for database management systems — a
//! from-scratch Rust reproduction of Huanchen Zhang's thesis (FST, SuRF,
//! the Hybrid Index, and HOPE, plus every substrate they are evaluated
//! on). This crate re-exports [`memtree_core`]; see that crate's
//! documentation for the full map, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for reproduced results.

#![warn(missing_docs)]

pub use memtree_core::*;
