#!/usr/bin/env bash
# Mirrors CI / tier-1 locally: offline build, tests, and lint.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test -q (tier-1, offline) =="
cargo test -q --offline

echo "== cargo test --workspace (offline) =="
cargo test -q --workspace --offline

echo "== cargo test --workspace with MEMTREE_KERNELS=scalar (portable fallback lane, offline) =="
MEMTREE_KERNELS=scalar cargo test -q --workspace --offline

echo "== bench_hotpath --smoke (kernel cross-checks, offline) =="
cargo run -p memtree-bench --release --offline --bin bench_hotpath -- --smoke

echo "== bench_lsm --smoke (batched read-path + leveled/tiered amp gates, offline) =="
cargo run -p memtree-bench --release --offline --bin bench_lsm -- --smoke

echo "== bench_recovery --smoke (WAL overhead + O(tables) filter-image recovery + torn-tail gates, offline) =="
cargo run -p memtree-bench --release --offline --bin bench_recovery -- --smoke

echo "== bench_faults --smoke (CRC tax + scrub/degraded/enospc gates, offline) =="
cargo run -p memtree-bench --release --offline --bin bench_faults -- --smoke

echo "== bench_serve --smoke (sharded serving: YCSB clients, p99, plausibility gates, offline) =="
cargo run -p memtree-bench --release --offline --bin bench_serve -- --smoke

echo "== concurrent suites with RUST_TEST_THREADS=4 (lsm + serve under real parallelism, offline) =="
RUST_TEST_THREADS=4 cargo test -q --offline -p memtree-lsm -p memtree-serve

echo "== crash + scrub oracles (seeds ${MEMTREE_FAULT_SEEDS:-0..32}, leveled+tiered by seed parity, offline) =="
cargo test -q --offline -p memtree-lsm --test crash_oracle --test wal_frames --test scrub_oracle

echo "== cargo clippy --all-targets -D warnings (offline) =="
cargo clippy --all-targets --offline -- -D warnings

echo "verify: OK"
